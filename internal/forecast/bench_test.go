package forecast

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkPredictorObserve is the alloc-regression gate for the predictor
// hot path: one Observe + ForecastInto per drift window per layer must be
// 0 allocs/op in steady state, matching the simulator's hot-path
// discipline (CI runs this with -benchmem).
func BenchmarkPredictorObserve(b *testing.B) {
	const experts = 64
	rng := rand.New(rand.NewSource(1))
	loads := make([]float64, experts)
	for j := range loads {
		loads[j] = float64(rng.Intn(4096))
	}
	dst := make([]float64, experts)
	for _, k := range Kinds() {
		b.Run(string(k), func(b *testing.B) {
			p, err := New(k, experts)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 8; i++ {
				p.Observe(loads)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Observe(loads)
				p.ForecastInto(dst)
			}
		})
	}
}

// BenchmarkSynthRouting sizes the boundary-solve preprocessing (not a
// zero-alloc path: it materializes one routing matrix per layer per epoch).
func BenchmarkSynthRouting(b *testing.B) {
	const experts, devices = 64, 32
	loads := make([]float64, experts)
	for j := range loads {
		loads[j] = float64((j*37)%experts) + 1
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SynthRouting(loads, devices, 4096); err != nil {
			b.Fatal(err)
		}
	}
}

func ExampleForecast() {
	p, _ := New(KindTrend, 2)
	p.Observe([]float64{10, 40})
	p.Observe([]float64{12, 37})
	p.Observe([]float64{14, 34})
	fmt.Println(Forecast(p))
	// Output: [16 31]
}
