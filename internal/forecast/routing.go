package forecast

import (
	"fmt"

	"laermoe/internal/trace"
)

// SynthRouting converts a forecast per-expert load vector into the routing
// matrix shape the planner solves from: every device splits its perDevice
// assignments across experts proportionally to the (non-negative part of
// the) forecast, with exact row sums via deterministic largest-remainder
// rounding. Devices get identical rows — the forecast carries no
// per-device information, and the planner's cost model only needs the
// column totals and the origin-device split to score a layout. An all-zero
// or all-negative forecast degrades to uniform routing.
func SynthRouting(loads []float64, devices, perDevice int) (*trace.RoutingMatrix, error) {
	e := len(loads)
	if e == 0 || devices <= 0 || perDevice <= 0 {
		return nil, fmt.Errorf("forecast: bad routing shape (%d experts, %d devices, %d per device)", e, devices, perDevice)
	}
	total := 0.0
	for _, v := range loads {
		if v > 0 {
			total += v
		}
	}
	p := make([]float64, e)
	if total == 0 {
		for j := range p {
			p[j] = 1 / float64(e)
		}
	} else {
		for j, v := range loads {
			if v > 0 {
				p[j] = v / total
			}
		}
	}
	row := apportion(p, perDevice)
	m := trace.NewRoutingMatrix(devices, e)
	for i := 0; i < devices; i++ {
		copy(m.R[i], row)
	}
	return m, nil
}

// apportion distributes total assignments proportionally to p with exact
// sum (largest-remainder method; stable index tie-break keeps it
// deterministic). Mirrors the trace generator's sampling arithmetic.
func apportion(p []float64, total int) []int {
	n := len(p)
	out := make([]int, n)
	fracs := make([]float64, n)
	assigned := 0
	for j, pj := range p {
		exact := pj * float64(total)
		out[j] = int(exact)
		assigned += out[j]
		fracs[j] = exact - float64(out[j])
	}
	for assigned < total {
		best := 0
		for j := 1; j < n; j++ {
			if fracs[j] > fracs[best] {
				best = j
			}
		}
		out[best]++
		fracs[best] = -1
		assigned++
	}
	return out
}
