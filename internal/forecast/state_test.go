package forecast

import (
	"encoding/json"
	"math/rand"
	"testing"
)

// TestStateRoundTrip is the export/restore fidelity property journal
// compaction rests on: for every predictor kind and history depth
// (untrained, one observation, a full ring with wraparound), a fresh
// predictor restored from an exported snapshot — pushed through a JSON
// round trip, since that is how the journal carries it — must forecast
// bit-identically to the original, now and after further observations.
func TestStateRoundTrip(t *testing.T) {
	const experts = 12
	rng := rand.New(rand.NewSource(7))
	obs := func() []float64 {
		row := make([]float64, experts)
		for j := range row {
			row[j] = float64(rng.Intn(500))
		}
		return row
	}
	for _, kind := range Kinds() {
		for _, seen := range []int{0, 1, 3, 9} {
			orig, err := New(kind, experts)
			if err != nil {
				t.Fatal(err)
			}
			stream := make([][]float64, seen)
			for k := range stream {
				stream[k] = obs()
				orig.Observe(stream[k])
			}

			st, err := ExportState(orig)
			if err != nil {
				t.Fatalf("%s/%d: export: %v", kind, seen, err)
			}
			b, err := json.Marshal(st)
			if err != nil {
				t.Fatal(err)
			}
			var decoded State
			if err := json.Unmarshal(b, &decoded); err != nil {
				t.Fatal(err)
			}
			restored, err := New(kind, experts)
			if err != nil {
				t.Fatal(err)
			}
			if err := RestoreState(restored, decoded); err != nil {
				t.Fatalf("%s/%d: restore: %v", kind, seen, err)
			}

			if orig.Ready() != restored.Ready() {
				t.Fatalf("%s/%d: Ready %v vs restored %v", kind, seen, orig.Ready(), restored.Ready())
			}
			compare := func(stage string) {
				t.Helper()
				if !orig.Ready() {
					return
				}
				want, got := Forecast(orig), Forecast(restored)
				for j := range want {
					if want[j] != got[j] {
						t.Fatalf("%s/%d %s: expert %d forecast %v vs restored %v", kind, seen, stage, j, want[j], got[j])
					}
				}
			}
			compare("at restore")
			// The histories must stay in lockstep through new observations
			// (this is what catches a mis-restored ring rotation).
			for k := 0; k < 4; k++ {
				row := obs()
				orig.Observe(row)
				restored.Observe(row)
				compare("after continuation")
			}
		}
	}
}

// TestStateRestoreRejectsMismatch: kind and shape mismatches fail loudly
// instead of silently corrupting a predictor.
func TestStateRestoreRejectsMismatch(t *testing.T) {
	ema, err := New(KindEMA, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := RestoreState(ema, State{Kind: KindLast, Seen: 1, Last: []float64{1, 2, 3, 4}}); err == nil {
		t.Error("kind mismatch not rejected")
	}
	if err := RestoreState(ema, State{Kind: KindEMA, Seen: 1, EMA: []float64{1, 2}}); err == nil {
		t.Error("expert-count mismatch not rejected")
	}
	trend, err := New(KindTrend, 4)
	if err != nil {
		t.Fatal(err)
	}
	lt := trend.(*LinearTrend)
	rows := make([][]float64, lt.Window()+1)
	for k := range rows {
		rows[k] = []float64{1, 2, 3, 4}
	}
	if err := RestoreState(trend, State{Kind: KindTrend, Seen: len(rows), Window: rows}); err == nil {
		t.Error("oversized trend window not rejected")
	}
	if err := RestoreState(trend, State{Kind: KindTrend, Seen: 0, Window: rows[:1]}); err == nil {
		t.Error("seen < stored rows not rejected")
	}
}
