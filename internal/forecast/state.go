package forecast

import "fmt"

// State is a serializable snapshot of a predictor's accumulated history.
// ExportState produces it and RestoreState folds it back into a freshly
// constructed predictor of the same kind and expert count, after which the
// restored predictor forecasts bit-identically to the exported one. It is
// the piece of planner state the journal's digest checkpoints cannot
// verify (predictor history influences only *future* decisions), so
// journal compaction must carry it explicitly.
type State struct {
	Kind Kind `json:"kind"`

	// Seen is the number of observations folded in (all kinds; EMA keeps
	// only an initialized flag, exported as Seen = 0 or 1).
	Seen int `json:"seen,omitempty"`

	// Last is LastValue's retained window.
	Last []float64 `json:"last,omitempty"`

	// EMA is the EMA predictor's smoothed averages (absent before the
	// first observation).
	EMA []float64 `json:"ema,omitempty"`

	// Window is LinearTrend's stored observations, oldest first.
	Window [][]float64 `json:"window,omitempty"`
}

// ExportState snapshots a predictor built by this package.
func ExportState(p Predictor) (State, error) {
	switch pr := p.(type) {
	case *LastValue:
		st := State{Kind: KindLast, Seen: pr.seen}
		if pr.seen > 0 {
			st.Last = append([]float64(nil), pr.last...)
		}
		return st, nil
	case *EMA:
		st := State{Kind: KindEMA}
		if pr.ema.Initialized() {
			st.Seen = 1
			st.EMA = pr.ema.Values()
		}
		return st, nil
	case *LinearTrend:
		st := State{Kind: KindTrend, Seen: pr.seen}
		st.Window = make([][]float64, pr.stored)
		for k := 0; k < pr.stored; k++ {
			st.Window[k] = append([]float64(nil), pr.at(k)...)
		}
		return st, nil
	}
	return State{}, fmt.Errorf("forecast: cannot export predictor %q", p.Name())
}

// RestoreState folds an exported snapshot into p, which must be a fresh
// predictor of the snapshot's kind and expert count.
func RestoreState(p Predictor, st State) error {
	if p.Name() != string(st.Kind) {
		return fmt.Errorf("forecast: restoring %q state into %q predictor", st.Kind, p.Name())
	}
	switch pr := p.(type) {
	case *LastValue:
		if st.Seen > 0 {
			if len(st.Last) != pr.Experts() {
				return fmt.Errorf("forecast: last-value state has %d experts, predictor %d", len(st.Last), pr.Experts())
			}
			copy(pr.last, st.Last)
		}
		pr.seen = st.Seen
		return nil
	case *EMA:
		if len(st.EMA) == 0 {
			return nil
		}
		if len(st.EMA) != pr.Experts() {
			return fmt.Errorf("forecast: EMA state has %d experts, predictor %d", len(st.EMA), pr.Experts())
		}
		pr.ema.RestoreValues(st.EMA)
		return nil
	case *LinearTrend:
		if len(st.Window) > pr.window {
			return fmt.Errorf("forecast: trend state stores %d rows, window is %d", len(st.Window), pr.window)
		}
		if st.Seen < len(st.Window) {
			return fmt.Errorf("forecast: trend state saw %d observations but stores %d", st.Seen, len(st.Window))
		}
		for k, row := range st.Window {
			if len(row) != pr.experts {
				return fmt.Errorf("forecast: trend state row %d has %d experts, predictor %d", k, len(row), pr.experts)
			}
			copy(pr.ring[k], row)
		}
		// The restored ring is laid out oldest-first from slot 0, which is
		// exactly the head=0 encoding; at() walks it identically to the
		// exported predictor's rotated ring.
		pr.head = 0
		pr.stored = len(st.Window)
		pr.seen = st.Seen
		return nil
	}
	return fmt.Errorf("forecast: cannot restore predictor %q", p.Name())
}
