package trace

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	g := mustGen(t, baseConfig())
	var buf bytes.Buffer
	w := NewWriter(&buf)
	var want [][]*RoutingMatrix
	for it := 0; it < 3; it++ {
		ms := g.Step()
		want = append(want, ms)
		for l, m := range ms {
			if err := w.Write(it, l, m); err != nil {
				t.Fatalf("Write: %v", err)
			}
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d iterations, want %d", len(got), len(want))
	}
	for it := range want {
		if len(got[it]) != len(want[it]) {
			t.Fatalf("iter %d: %d layers, want %d", it, len(got[it]), len(want[it]))
		}
		for l := range want[it] {
			for i := 0; i < want[it][l].N; i++ {
				for j := 0; j < want[it][l].E; j++ {
					if got[it][l].R[i][j] != want[it][l].R[i][j] {
						t.Fatalf("iter %d layer %d mismatch at (%d,%d)", it, l, i, j)
					}
				}
			}
		}
	}
}

func TestReaderStreaming(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	m := NewRoutingMatrix(2, 2)
	m.R[0][0] = 3
	if err := w.Write(0, 0, m); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	rec, err := r.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	if rec.Iteration != 0 || rec.Layer != 0 || rec.R[0][0] != 3 {
		t.Errorf("unexpected record %+v", rec)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestReadAllRejectsOutOfOrderLayers(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	m := NewRoutingMatrix(1, 1)
	if err := w.Write(0, 1, m); err != nil { // layer 1 before layer 0
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadAll(&buf); err == nil {
		t.Error("ReadAll accepted out-of-order layers")
	}
}

func TestReaderRejectsCorruptRecord(t *testing.T) {
	r := NewReader(strings.NewReader(`{"iter":0,"layer":0,"n":3,"e":1,"r":[[1]]}`))
	if _, err := r.Next(); err == nil {
		t.Error("corrupt record (row count mismatch) accepted")
	}
}

func TestWriterRejectsInvalidMatrix(t *testing.T) {
	w := NewWriter(io.Discard)
	m := NewRoutingMatrix(1, 1)
	m.R[0][0] = -5
	if err := w.Write(0, 0, m); err == nil {
		t.Error("Write accepted invalid matrix")
	}
}

func TestReplayer(t *testing.T) {
	g := mustGen(t, baseConfig())
	iters := [][]*RoutingMatrix{g.Step(), g.Step()}
	rep, err := NewReplayer(iters)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Iterations() != 2 {
		t.Errorf("Iterations = %d, want 2", rep.Iterations())
	}
	first := rep.Step()
	rep.Step()
	wrapped := rep.Step() // wraps to iteration 0
	if first[0] != wrapped[0] {
		t.Error("replayer did not wrap around")
	}
	if _, err := NewReplayer(nil); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := NewReplayer([][]*RoutingMatrix{nil}); err == nil {
		t.Error("iteration without layers accepted")
	}
}

// TestReadAllRejectsNonContiguousIterations: records must stay
// iteration-major — both forward jumps and regressions to an earlier
// iteration are corrupt, not mergeable.
func TestReadAllRejectsNonContiguousIterations(t *testing.T) {
	rec := func(iter, layer int) string {
		return fmt.Sprintf(`{"iter":%d,"layer":%d,"n":1,"e":1,"r":[[3]]}`, iter, layer) + "\n"
	}
	cases := map[string]string{
		"forward jump":   rec(0, 0) + rec(2, 0),
		"starts past 0":  rec(1, 0),
		"backward merge": rec(0, 0) + rec(0, 1) + rec(1, 0) + rec(1, 1) + rec(0, 2),
	}
	for name, stream := range cases {
		if _, err := ReadAll(strings.NewReader(stream)); err == nil {
			t.Errorf("%s: corrupt stream accepted", name)
		}
	}
	// The writer's own order still round-trips.
	ok := rec(0, 0) + rec(0, 1) + rec(1, 0) + rec(1, 1)
	iters, err := ReadAll(strings.NewReader(ok))
	if err != nil {
		t.Fatal(err)
	}
	if len(iters) != 2 || len(iters[0]) != 2 || len(iters[1]) != 2 {
		t.Fatalf("valid stream mis-grouped: %d iterations", len(iters))
	}
}
