package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Record is one serialized routing matrix: a single (iteration, layer) cell
// of a trace. Traces are stored as JSON lines, one Record per line, so they
// can be streamed and concatenated.
type Record struct {
	Iteration int     `json:"iter"`
	Layer     int     `json:"layer"`
	N         int     `json:"n"`
	E         int     `json:"e"`
	R         [][]int `json:"r"`
}

// Writer streams Records to an io.Writer as JSON lines.
type Writer struct {
	w   *bufio.Writer
	enc *json.Encoder
}

// NewWriter wraps w for trace writing.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriter(w)
	return &Writer{w: bw, enc: json.NewEncoder(bw)}
}

// Write appends one routing matrix for the given iteration and layer.
func (tw *Writer) Write(iter, layer int, m *RoutingMatrix) error {
	if iter < 0 || layer < 0 {
		return fmt.Errorf("trace: negative iteration %d or layer %d", iter, layer)
	}
	if err := m.Validate(); err != nil {
		return err
	}
	return tw.enc.Encode(Record{Iteration: iter, Layer: layer, N: m.N, E: m.E, R: m.R})
}

// Flush flushes buffered output; call before closing the underlying writer.
func (tw *Writer) Flush() error { return tw.w.Flush() }

// Reader streams Records back from an io.Reader.
type Reader struct {
	dec *json.Decoder
}

// NewReader wraps r for trace reading.
func NewReader(r io.Reader) *Reader {
	return &Reader{dec: json.NewDecoder(bufio.NewReader(r))}
}

// Next returns the next record, or io.EOF at end of stream.
func (tr *Reader) Next() (*Record, error) {
	var rec Record
	if err := tr.dec.Decode(&rec); err != nil {
		return nil, err
	}
	if rec.Iteration < 0 || rec.Layer < 0 {
		return nil, fmt.Errorf("trace: record has negative iteration %d or layer %d",
			rec.Iteration, rec.Layer)
	}
	if len(rec.R) != rec.N {
		return nil, fmt.Errorf("trace: record iter=%d layer=%d has %d rows, want %d",
			rec.Iteration, rec.Layer, len(rec.R), rec.N)
	}
	return &rec, nil
}

// Matrix converts the record back to a RoutingMatrix.
func (rec *Record) Matrix() (*RoutingMatrix, error) {
	m := &RoutingMatrix{N: rec.N, E: rec.E, R: rec.R}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// ReadAll loads a full trace into memory, grouped as [iteration][layer].
// Records must be written iteration-major with contiguous layers (the
// format produced by Writer in the obvious loop order).
func ReadAll(r io.Reader) ([][]*RoutingMatrix, error) {
	tr := NewReader(r)
	var out [][]*RoutingMatrix
	for {
		rec, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		// Iterations must arrive in the Writer's iteration-major order:
		// each record either continues the current iteration or starts the
		// next one. A forward jump would let one corrupt record allocate
		// an unbounded grouping slice; a backward record would silently
		// merge into an earlier iteration and skew its layer count.
		switch {
		case rec.Iteration == len(out):
			out = append(out, nil)
		case len(out) > 0 && rec.Iteration == len(out)-1:
			// continuing the current iteration
		default:
			return nil, fmt.Errorf("trace: iteration %d after iteration %d (records must be contiguous, iteration-major)",
				rec.Iteration, len(out)-1)
		}
		m, err := rec.Matrix()
		if err != nil {
			return nil, err
		}
		if rec.Layer != len(out[rec.Iteration]) {
			return nil, fmt.Errorf("trace: out-of-order layer %d at iteration %d (expected %d)",
				rec.Layer, rec.Iteration, len(out[rec.Iteration]))
		}
		out[rec.Iteration] = append(out[rec.Iteration], m)
	}
	return out, nil
}

// Replayer serves matrices from a loaded trace with the same Step API as
// Generator, allowing recorded workloads to drive any simulation. When the
// trace is exhausted it wraps around to the beginning.
type Replayer struct {
	iters [][]*RoutingMatrix
	next  int
}

// NewReplayer wraps a loaded trace. It requires at least one iteration.
func NewReplayer(iters [][]*RoutingMatrix) (*Replayer, error) {
	if len(iters) == 0 {
		return nil, fmt.Errorf("trace: empty trace")
	}
	for i, layers := range iters {
		if len(layers) == 0 {
			return nil, fmt.Errorf("trace: iteration %d has no layers", i)
		}
	}
	return &Replayer{iters: iters}, nil
}

// Step returns the next iteration's per-layer matrices.
func (r *Replayer) Step() []*RoutingMatrix {
	ms := r.iters[r.next%len(r.iters)]
	r.next++
	return ms
}

// Iterations returns the number of distinct iterations in the trace.
func (r *Replayer) Iterations() int { return len(r.iters) }
