package trace

import (
	"math/rand"
	"slices"
	"testing"
)

func TestDiffRoundTrip(t *testing.T) {
	gen, err := NewGenerator(GeneratorConfig{
		Devices: 8, Experts: 32, Layers: 2, TokensPerDevice: 128, TopK: 2, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	prev := gen.Step()
	if err := gen.ApplyDrift(DriftConfig{Model: DriftMigration, Rate: 0.4}); err != nil {
		t.Fatal(err)
	}
	next := gen.Step()
	for l := range prev {
		d, err := Diff(prev[l], next[l])
		if err != nil {
			t.Fatal(err)
		}
		got := prev[l].Clone()
		if err := d.ApplyTo(got); err != nil {
			t.Fatal(err)
		}
		for i := range got.R {
			if !slices.Equal(got.R[i], next[l].R[i]) {
				t.Fatalf("layer %d row %d: delta round trip diverged", l, i)
			}
		}
		// The sparse expert deltas must agree with the dense column sums.
		prevLoads := prev[l].ExpertLoads()
		nextLoads := next[l].ExpertLoads()
		dense := make([]int, prev[l].E)
		ids, deltas := d.ExpertLoadDelta()
		for k, j := range ids {
			dense[j] = deltas[k]
		}
		for j := range dense {
			if want := int(nextLoads[j] - prevLoads[j]); dense[j] != want {
				t.Fatalf("layer %d expert %d: load delta %d, want %d", l, j, dense[j], want)
			}
		}
		// Same token budget on both sides: the net delta is zero.
		if d.TotalDelta() != 0 {
			t.Fatalf("layer %d: net delta %d, want 0", l, d.TotalDelta())
		}
	}
}

func TestDiffShapeMismatch(t *testing.T) {
	a := NewRoutingMatrix(2, 4)
	b := NewRoutingMatrix(2, 5)
	if _, err := Diff(a, b); err == nil {
		t.Fatal("expected shape-mismatch error from Diff")
	}
	d, err := Diff(a, a.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 0 {
		t.Fatalf("identical matrices produced %d cells", d.Len())
	}
	if err := d.ApplyTo(b); err == nil {
		t.Fatal("expected shape-mismatch error from ApplyTo")
	}
}

func TestDiffReuseIsClean(t *testing.T) {
	// A reused delta must not leak touched-expert state between calls.
	a := NewRoutingMatrix(2, 6)
	b := a.Clone()
	b.R[0][3] = 5
	b.R[1][3] = 2
	b.R[1][5] = 1
	d, err := Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 3 {
		t.Fatalf("got %d cells, want 3", d.Len())
	}
	ids, deltas := d.ExpertLoadDelta()
	if !slices.Equal(ids, []int{3, 5}) || !slices.Equal(deltas, []int{7, 1}) {
		t.Fatalf("expert deltas %v/%v, want [3 5]/[7 1]", ids, deltas)
	}
	// Second diff in the opposite direction through the same scratch.
	if d, err = DiffInto(b, a, d); err != nil {
		t.Fatal(err)
	}
	ids, deltas = d.ExpertLoadDelta()
	if !slices.Equal(ids, []int{3, 5}) || !slices.Equal(deltas, []int{-7, -1}) {
		t.Fatalf("reverse expert deltas %v/%v, want [3 5]/[-7 -1]", ids, deltas)
	}
}

func TestStepDeltaIntoMatchesStep(t *testing.T) {
	cfg := GeneratorConfig{
		Devices: 6, Experts: 16, Layers: 3, TokensPerDevice: 64, TopK: 2, Seed: 11,
	}
	ref, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var dst []*RoutingMatrix
	var deltas []*RoutingDelta
	prev := make([]*RoutingMatrix, cfg.Layers)
	for l := range prev {
		prev[l] = NewRoutingMatrix(cfg.Devices, cfg.Experts)
	}
	for it := 0; it < 4; it++ {
		want := ref.Step()
		dst, deltas = gen.StepDeltaInto(dst, deltas)
		for l := range want {
			for i := range want[l].R {
				if !slices.Equal(dst[l].R[i], want[l].R[i]) {
					t.Fatalf("iter %d layer %d: delta-path matrix diverged from Step", it, l)
				}
			}
			// The emitted delta bridges the previous emission to this one.
			got := prev[l].Clone()
			if err := deltas[l].ApplyTo(got); err != nil {
				t.Fatal(err)
			}
			for i := range got.R {
				if !slices.Equal(got.R[i], want[l].R[i]) {
					t.Fatalf("iter %d layer %d: emitted delta does not bridge emissions", it, l)
				}
			}
			prev[l] = want[l].Clone()
		}
	}
}

// sortedApportionInto is the historical full-sort reference implementation,
// kept as the oracle the quickselect kernel is pinned against.
func sortedApportionInto(out []int, p []float64, total int, rems []remEntry) {
	n := len(p)
	assigned := 0
	for j, pj := range p {
		exact := pj * float64(total)
		v := int(exact)
		out[j] = v
		assigned += v
		rems[j] = remEntry{j, exact - float64(v)}
	}
	k := total - assigned
	if k <= 0 {
		return
	}
	slices.SortFunc(rems, func(a, b remEntry) int {
		switch {
		case a.frac > b.frac:
			return -1
		case a.frac < b.frac:
			return 1
		default:
			return a.idx - b.idx
		}
	})
	for i := 0; i < k && i < n; i++ {
		out[rems[i].idx]++
	}
	if k > n {
		out[0] += k - n
	}
}

func TestApportionQuickselectMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(64)
		p := make([]float64, n)
		var sum float64
		for j := range p {
			p[j] = rng.Float64()
			sum += p[j]
		}
		if trial%3 == 0 {
			// Normalized distribution (the production regime).
			for j := range p {
				p[j] /= sum
			}
		}
		total := rng.Intn(4096)
		got := make([]int, n)
		want := make([]int, n)
		apportionInto(got, p, total, make([]remEntry, n))
		sortedApportionInto(want, p, total, make([]remEntry, n))
		if !slices.Equal(got, want) {
			t.Fatalf("trial %d (n=%d total=%d): quickselect %v != sort %v", trial, n, total, got, want)
		}
	}
}

func TestFloat32KernelsProduceValidRouting(t *testing.T) {
	gen, err := NewGenerator(GeneratorConfig{
		Devices: 4, Experts: 64, Layers: 2, TokensPerDevice: 256, TopK: 2, Seed: 5,
		Float32Kernels: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ms := gen.Step()
	for l, m := range ms {
		if err := m.Validate(); err != nil {
			t.Fatalf("layer %d: %v", l, err)
		}
		if got, want := m.Total(), 4*256*2; got != want {
			t.Fatalf("layer %d: total %d, want %d", l, got, want)
		}
	}
}
