// Inner-loop kernels of layer synthesis: the remainder top-k selection
// behind largest-remainder apportioning and the float32 softmax variant.
//
// apportionInto historically sorted all E remainder entries to pick the k
// largest — O(E log E) with E=16384 at the scale shapes. selectTopRems
// replaces the sort with a deterministic quickselect: the comparator
// (fraction desc, index asc) is a strict total order (indices are unique),
// so the selected top-k SET is unique and the routing output is
// bit-identical to the sorted implementation — only the order inside the
// selected prefix differs, and the increment loop is order-insensitive.
package trace

import "math"

// remLess is the apportion priority order: larger fraction first, index
// ascending as the deterministic tie-break. Strict total order because
// indices never repeat.
func remLess(a, b remEntry) bool {
	if a.frac != b.frac {
		return a.frac > b.frac
	}
	return a.idx < b.idx
}

// selectTopRems partitions rems so rems[:k] holds the k highest-priority
// entries under remLess (in unspecified order). Deterministic: the pivot is
// the median-of-three of the first, middle and last entries, with no
// randomness, so repeated runs walk identical state.
func selectTopRems(rems []remEntry, k int) {
	lo, hi := 0, len(rems)
	for hi-lo > 1 {
		if k <= lo || k >= hi {
			return
		}
		// Median-of-three pivot, moved to lo.
		mid := lo + (hi-lo)/2
		if remLess(rems[mid], rems[lo]) {
			rems[mid], rems[lo] = rems[lo], rems[mid]
		}
		if remLess(rems[hi-1], rems[mid]) {
			rems[hi-1], rems[mid] = rems[mid], rems[hi-1]
			if remLess(rems[mid], rems[lo]) {
				rems[mid], rems[lo] = rems[lo], rems[mid]
			}
		}
		// Pivot moves to lo before partitioning: with rems[lo] == pivot the
		// i-scan stops at lo immediately, which bounds the Hoare partition
		// point at hi-2 and guarantees both narrowing branches make progress.
		rems[lo], rems[mid] = rems[mid], rems[lo]
		pivot := rems[lo]
		// Hoare partition around pivot.
		i, j := lo-1, hi
		for {
			for {
				i++
				if !remLess(rems[i], pivot) {
					break
				}
			}
			for {
				j--
				if !remLess(pivot, rems[j]) {
					break
				}
			}
			if i >= j {
				break
			}
			rems[i], rems[j] = rems[j], rems[i]
		}
		// rems[lo:j+1] all precede-or-equal the pivot's position; recurse
		// into whichever side still straddles k.
		if k <= j {
			hi = j + 1
		} else {
			lo = j + 1
		}
	}
}

// softmax32Into is the float32-accumulation softmax kernel, selected by
// GeneratorConfig.Float32Kernels: the max-reduction is branch-free
// (math.Max compiles to a single instruction) and the normalizer
// accumulates in float32, halving the bandwidth the exp loop is bound on at
// E=16k. Opt-in only — it changes low-order bits, so every golden-pinned
// path stays on softmaxInto.
func softmax32Into(dst, logits []float64) {
	maxL := math.Inf(-1)
	for _, v := range logits {
		maxL = math.Max(maxL, v)
	}
	var sum float32
	for i, v := range logits {
		e := float32(math.Exp(v - maxL))
		dst[i] = float64(e)
		sum += e
	}
	inv := float64(1 / sum)
	for i := range dst {
		dst[i] *= inv
	}
}
