package trace

import (
	"math/rand"
	"testing"
)

func stepIntoCfg() GeneratorConfig {
	return GeneratorConfig{
		Devices: 8, Experts: 16, Layers: 4, TokensPerDevice: 1024, TopK: 2, Seed: 21,
	}
}

func matricesEqual(a, b []*RoutingMatrix) bool {
	if len(a) != len(b) {
		return false
	}
	for l := range a {
		if a[l].N != b[l].N || a[l].E != b[l].E {
			return false
		}
		for i := range a[l].R {
			for j := range a[l].R[i] {
				if a[l].R[i][j] != b[l].R[i][j] {
					return false
				}
			}
		}
	}
	return true
}

// TestStepIntoMatchesStep: reusing caller-owned matrices must reproduce the
// allocating path exactly, iteration after iteration.
func TestStepIntoMatchesStep(t *testing.T) {
	ga := mustGen(t, stepIntoCfg())
	gb := mustGen(t, stepIntoCfg())
	var bufs []*RoutingMatrix
	for it := 0; it < 5; it++ {
		want := ga.Step()
		bufs = gb.StepInto(bufs)
		if !matricesEqual(want, bufs) {
			t.Fatalf("iteration %d: StepInto differs from Step", it)
		}
	}
	if ga.Iteration() != gb.Iteration() {
		t.Fatalf("iteration counters diverged: %d vs %d", ga.Iteration(), gb.Iteration())
	}
}

// TestStepIntoReplacesForeignShapes: nil, short and wrongly shaped dst
// entries must be replaced with correct matrices, not written through.
func TestStepIntoReplacesForeignShapes(t *testing.T) {
	g := mustGen(t, stepIntoCfg())
	want := mustGen(t, stepIntoCfg()).Step()
	dst := []*RoutingMatrix{nil, NewRoutingMatrix(2, 3)} // short + misshapen
	dst = g.StepInto(dst)
	if !matricesEqual(want, dst) {
		t.Fatal("StepInto with foreign dst shapes differs from Step")
	}
	for l, m := range dst {
		if err := m.Validate(); err != nil {
			t.Fatalf("layer %d: %v", l, err)
		}
	}
}

// TestStepIntoParallelMatchesSerial: per-layer random streams must make the
// trace byte-identical at any worker count, including across drift.
func TestStepIntoParallelMatchesSerial(t *testing.T) {
	serialCfg := stepIntoCfg()
	serialCfg.Parallelism = 1
	for _, workers := range []int{2, 8} {
		parCfg := stepIntoCfg()
		parCfg.Parallelism = workers
		gs, gp := mustGen(t, serialCfg), mustGen(t, parCfg)
		var sb, pb []*RoutingMatrix
		for it := 0; it < 4; it++ {
			if it == 2 {
				for _, g := range []*Generator{gs, gp} {
					if err := g.ApplyDrift(DriftConfig{Model: DriftMigration, Rate: 0.4}); err != nil {
						t.Fatal(err)
					}
				}
			}
			sb, pb = gs.StepInto(sb), gp.StepInto(pb)
			if !matricesEqual(sb, pb) {
				t.Fatalf("workers=%d iteration %d: parallel trace differs from serial", workers, it)
			}
		}
	}
}

// TestZeroAllocSteadyState: once the routing matrices exist, serial
// StepInto must allocate nothing per iteration — the property that lets
// the online engine replay production shapes without GC churn.
func TestZeroAllocSteadyState(t *testing.T) {
	cfg := stepIntoCfg()
	cfg.Parallelism = 1
	g := mustGen(t, cfg)
	var bufs []*RoutingMatrix
	bufs = g.StepInto(bufs) // warm the matrices and scratch
	allocs := testing.AllocsPerRun(20, func() {
		bufs = g.StepInto(bufs)
	})
	if allocs != 0 {
		t.Fatalf("StepInto allocates %.1f objects per iteration, want 0", allocs)
	}
}

// apportionReference is the historical O(E^2) remainder loop, kept as the
// oracle for the sort-based selection.
func apportionReference(p []float64, total int) []int {
	n := len(p)
	out := make([]int, n)
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, n)
	assigned := 0
	for j, pj := range p {
		exact := pj * float64(total)
		out[j] = int(exact)
		assigned += out[j]
		rems[j] = rem{j, exact - float64(out[j])}
	}
	for assigned < total {
		best := -1
		for j := range rems {
			if best == -1 || rems[j].frac > rems[best].frac {
				best = j
			}
		}
		out[rems[best].idx]++
		rems[best].frac = -1
		assigned++
	}
	return out
}

// TestApportionMatchesReference: the sort-based largest-remainder selection
// must reproduce the linear-scan loop exactly — same totals, same experts,
// same tie-breaks — across random distributions and totals.
func TestApportionMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(64)
		p := make([]float64, n)
		sum := 0.0
		for j := range p {
			p[j] = rng.Float64()
			if rng.Intn(4) == 0 && j > 0 {
				p[j] = p[j-1] // exercise exact fraction ties
			}
			sum += p[j]
		}
		for j := range p {
			p[j] /= sum
		}
		total := rng.Intn(5000)
		got, want := apportion(p, total), apportionReference(p, total)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("trial %d (n=%d total=%d): expert %d got %d, reference %d",
					trial, n, total, j, got[j], want[j])
			}
		}
	}
}
