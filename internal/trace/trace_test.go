package trace

import (
	"math"
	"testing"
	"testing/quick"

	"laermoe/internal/stats"
)

func mustGen(t *testing.T, cfg GeneratorConfig) *Generator {
	t.Helper()
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	return g
}

func baseConfig() GeneratorConfig {
	return GeneratorConfig{
		Devices: 8, Experts: 8, Layers: 4, TokensPerDevice: 1024, TopK: 2, Seed: 11,
	}
}

// TestConservation: every device dispatches exactly TokensPerDevice * TopK
// assignments in every layer of every iteration.
func TestConservation(t *testing.T) {
	g := mustGen(t, baseConfig())
	for it := 0; it < 5; it++ {
		for l, m := range g.Step() {
			if err := m.Validate(); err != nil {
				t.Fatalf("iter %d layer %d: %v", it, l, err)
			}
			for i, tot := range m.DeviceTotals() {
				if tot != 1024*2 {
					t.Fatalf("iter %d layer %d device %d: %d assignments, want %d", it, l, i, tot, 2048)
				}
			}
		}
	}
}

// TestDeterminism: identical seeds give identical traces; different seeds
// give different ones.
func TestDeterminism(t *testing.T) {
	a := mustGen(t, baseConfig())
	b := mustGen(t, baseConfig())
	cfgC := baseConfig()
	cfgC.Seed = 99
	c := mustGen(t, cfgC)
	sawDiff := false
	for it := 0; it < 3; it++ {
		ma, mb, mc := a.Step(), b.Step(), c.Step()
		for l := range ma {
			for i := 0; i < ma[l].N; i++ {
				for j := 0; j < ma[l].E; j++ {
					if ma[l].R[i][j] != mb[l].R[i][j] {
						t.Fatalf("same-seed traces diverge at iter %d layer %d", it, l)
					}
					if ma[l].R[i][j] != mc[l].R[i][j] {
						sawDiff = true
					}
				}
			}
		}
	}
	if !sawDiff {
		t.Error("different seeds produced identical traces")
	}
}

// TestImbalanceExists: with default skew, expert loads are significantly
// imbalanced (the Fig. 1a phenomenon), with max/mean commonly above 1.5.
func TestImbalanceExists(t *testing.T) {
	g := mustGen(t, baseConfig())
	above := 0
	total := 0
	for it := 0; it < 10; it++ {
		for _, m := range g.Step() {
			if stats.Imbalance(m.ExpertLoads()) > 1.5 {
				above++
			}
			total++
		}
	}
	if above < total/2 {
		t.Errorf("only %d/%d layer-iterations show >1.5x imbalance", above, total)
	}
}

// TestAuxLossRebalances: the paper's Fig. 2 mechanism — a large auxiliary
// loss weight pushes routing toward uniform; 1e-4 barely changes it.
func TestAuxLossRebalances(t *testing.T) {
	imbAt := func(w float64) float64 {
		cfg := baseConfig()
		cfg.AuxLossWeight = w
		g := mustGen(t, cfg)
		sum, n := 0.0, 0
		for it := 0; it < 10; it++ {
			for _, m := range g.Step() {
				sum += stats.Imbalance(m.ExpertLoads())
				n++
			}
		}
		return sum / float64(n)
	}
	none, small, large := imbAt(0), imbAt(1e-4), imbAt(1e-2)
	if !(none >= small && small >= large) {
		t.Errorf("imbalance ordering violated: w=0 %.3f, w=1e-4 %.3f, w=1e-2 %.3f", none, small, large)
	}
	if large > 1.25 {
		t.Errorf("w=1e-2 should nearly balance routing, got imbalance %.3f", large)
	}
	if none < 1.5 {
		t.Errorf("w=0 should be clearly imbalanced, got %.3f", none)
	}
}

// TestTemporalPersistence: consecutive iterations' expert-load vectors must
// be strongly correlated (hotspots drift slowly) — the property that makes
// the paper's history-based planning viable.
func TestTemporalPersistence(t *testing.T) {
	g := mustGen(t, baseConfig())
	var prev []float64
	var corrs []float64
	for it := 0; it < 40; it++ {
		loads := g.Step()[0].ExpertLoads()
		if prev != nil {
			corrs = append(corrs, pearson(prev, loads))
		}
		prev = loads
	}
	mean := stats.Mean(corrs)
	if mean < 0.8 {
		t.Errorf("mean consecutive-iteration load correlation %.3f, want >= 0.8", mean)
	}
}

func pearson(a, b []float64) float64 {
	ma, mb := stats.Mean(a), stats.Mean(b)
	var num, da, db float64
	for i := range a {
		x, y := a[i]-ma, b[i]-mb
		num += x * y
		da += x * x
		db += y * y
	}
	if da == 0 || db == 0 {
		return 1
	}
	return num / math.Sqrt(da*db)
}

// TestLayersDiffer: different layers should have different hot experts at
// least sometimes (Fig. 1a shows per-layer variation).
func TestLayersDiffer(t *testing.T) {
	g := mustGen(t, baseConfig())
	ms := g.Step()
	hotOf := func(m *RoutingMatrix) int {
		loads := m.ExpertLoads()
		hot := 0
		for j, v := range loads {
			if v > loads[hot] {
				hot = j
			}
		}
		return hot
	}
	first := hotOf(ms[0])
	for _, m := range ms[1:] {
		if hotOf(m) != first {
			return
		}
	}
	t.Error("all layers share one hot expert; per-layer variation missing")
}

func TestExpertProbabilitiesSumToOne(t *testing.T) {
	g := mustGen(t, baseConfig())
	g.Step()
	p := g.ExpertProbabilities(0)
	sum := 0.0
	for _, v := range p {
		if v < 0 {
			t.Fatalf("negative probability %g", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %g", sum)
	}
}

// TestApportionExact: apportion always hits the requested total with
// non-negative integer parts (property-based).
func TestApportionExact(t *testing.T) {
	f := func(raw []uint8, totalRaw uint16) bool {
		if len(raw) == 0 {
			return true
		}
		total := int(totalRaw % 10000)
		ps := make([]float64, len(raw))
		sum := 0.0
		for i, v := range raw {
			ps[i] = float64(v) + 0.01 // avoid all-zero
			sum += ps[i]
		}
		for i := range ps {
			ps[i] /= sum
		}
		out := apportion(ps, total)
		got := 0
		for _, v := range out {
			if v < 0 {
				return false
			}
			got += v
		}
		return got == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBalancedMatrix(t *testing.T) {
	m := Balanced(4, 8, 1000, 2)
	for i, tot := range m.DeviceTotals() {
		if tot != 2000 {
			t.Fatalf("device %d total %d, want 2000", i, tot)
		}
	}
	if imb := stats.Imbalance(m.ExpertLoads()); imb > 1.001 {
		t.Errorf("balanced matrix has expert imbalance %.4f", imb)
	}
	// Indivisible case: remainders must still conserve totals.
	m2 := Balanced(3, 7, 100, 1)
	for i, tot := range m2.DeviceTotals() {
		if tot != 100 {
			t.Fatalf("device %d total %d, want 100", i, tot)
		}
	}
}

func TestGeneratorConfigValidation(t *testing.T) {
	bad := []GeneratorConfig{
		{Devices: 0, Experts: 8, Layers: 1, TokensPerDevice: 10, TopK: 1},
		{Devices: 2, Experts: 8, Layers: 1, TokensPerDevice: 0, TopK: 1},
		{Devices: 2, Experts: 4, Layers: 1, TokensPerDevice: 10, TopK: 5},
		{Devices: 2, Experts: 4, Layers: 0, TokensPerDevice: 10, TopK: 2},
	}
	for i, cfg := range bad {
		if _, err := NewGenerator(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestRoutingMatrixHelpers(t *testing.T) {
	m := NewRoutingMatrix(2, 3)
	m.R[0][1] = 5
	m.R[1][2] = 7
	if m.Total() != 12 {
		t.Errorf("Total = %d, want 12", m.Total())
	}
	loads := m.ExpertLoads()
	if loads[1] != 5 || loads[2] != 7 || loads[0] != 0 {
		t.Errorf("ExpertLoads = %v", loads)
	}
	c := m.Clone()
	c.R[0][1] = 99
	if m.R[0][1] != 5 {
		t.Error("Clone aliases original")
	}
	m.R[0][0] = -1
	if err := m.Validate(); err == nil {
		t.Error("Validate accepted negative count")
	}
}
