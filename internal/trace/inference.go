package trace

import (
	"fmt"
	"math"
	"math/rand"

	"laermoe/internal/par"
)

// ArrivalShape names a request-arrival traffic shape for the inference
// workload.
type ArrivalShape string

const (
	// ArrivalDiurnal modulates the arrival rate sinusoidally around the
	// mean — the day/night cycle of a serving fleet, compressed so one
	// period spans ArrivalPeriod iterations.
	ArrivalDiurnal ArrivalShape = "diurnal"
	// ArrivalBursty runs below the mean most of the time and spikes to a
	// multiple of it in short burst episodes (flash-crowd traffic).
	ArrivalBursty ArrivalShape = "bursty"
)

// ArrivalShapes lists every arrival shape accepted by NewRequestGenerator.
func ArrivalShapes() []ArrivalShape { return []ArrivalShape{ArrivalDiurnal, ArrivalBursty} }

// Arrival-process constants. They are fixed rather than configurable so
// every consumer of an arrival shape means the same traffic.
const (
	// ArrivalPeriod is the diurnal cycle length in iterations.
	ArrivalPeriod = 24
	// arrivalDiurnalAmp is the sinusoidal modulation depth of the diurnal
	// shape: the rate swings between (1±amp) x mean.
	arrivalDiurnalAmp = 0.6
	// arrivalBurstyBase, arrivalBurstyPeak: the bursty shape idles at
	// base x mean and spikes to peak x mean during a burst episode.
	arrivalBurstyBase = 0.7
	arrivalBurstyPeak = 2.5
	// arrivalBurstEnter/arrivalBurstExit are the per-iteration transition
	// probabilities of the burst state machine (mean episode length
	// 1/exit = 2.5 iterations, duty cycle ~20%).
	arrivalBurstEnter = 0.10
	arrivalBurstExit  = 0.40
)

// Validate reports whether the shape names a known arrival process.
func (s ArrivalShape) Validate() error {
	switch s {
	case ArrivalDiurnal, ArrivalBursty:
		return nil
	}
	return fmt.Errorf("trace: unknown arrival shape %q (have %v)", s, ArrivalShapes())
}

// RequestConfig parameterizes a request-level inference trace. The
// embedded GeneratorConfig supplies the expert-popularity process
// (per-layer AR(1) logit streams, aux compression, device noise) exactly
// as in training; TokensPerDevice is reinterpreted as the *mean* decode
// requests arriving per device per iteration, around which the arrival
// process modulates.
type RequestConfig struct {
	GeneratorConfig
	// Arrival selects the traffic shape ("" = diurnal).
	Arrival ArrivalShape
}

// RequestBatch is one iteration of decode traffic: the per-device request
// counts the arrival process drew, and every request's top-k expert
// choices per layer. Choices are what the latency objective consumes —
// a request's decode latency is the sum over layers of the slowest of
// its k experts' queue-drain times.
type RequestBatch struct {
	// TopK is the choices per request per layer.
	TopK int
	// PerDevice[i] is the number of requests that arrived at device i
	// this iteration; Offsets is its prefix sum (len devices+1), so
	// device i's requests are the global indices Offsets[i]..Offsets[i+1].
	PerDevice []int
	Offsets   []int
	// Choices[l] holds layer l's expert choices, flat and device-grouped:
	// request r of device i chose Choices[l][(Offsets[i]+r)*TopK+k] as
	// its k-th expert. The k choices of one request are distinct.
	Choices [][]int32
}

// Requests is the total request count of the batch.
func (b *RequestBatch) Requests() int {
	if len(b.Offsets) == 0 {
		return 0
	}
	return b.Offsets[len(b.Offsets)-1]
}

// RequestGenerator produces one iteration of request-level decode traffic
// per Step: a Poisson arrival draw per device (rate modulated by the
// configured shape), per-request top-k expert choices sampled from the
// same per-layer popularity process the training Generator evolves, and
// the aggregated per-layer RoutingMatrix views the planner already
// consumes. Arrival counts come from one dedicated RNG stream advanced
// before the per-layer fan-out, and each layer samples choices only from
// its own stream — so, like Generator, the trace is byte-identical at any
// Parallelism.
type RequestGenerator struct {
	gen     *Generator
	arrival ArrivalShape
	arr     *rand.Rand
	burst   bool
	iter    int

	batch RequestBatch
}

// arrivalStream is the layerSeed index of the arrival RNG stream — far
// past any real layer index so the stream never collides with a layer's.
const arrivalStream = 1 << 30

// NewRequestGenerator builds a request-level trace generator.
func NewRequestGenerator(cfg RequestConfig) (*RequestGenerator, error) {
	if cfg.Arrival == "" {
		cfg.Arrival = ArrivalDiurnal
	}
	if err := cfg.Arrival.Validate(); err != nil {
		return nil, err
	}
	gen, err := NewGenerator(cfg.GeneratorConfig)
	if err != nil {
		return nil, err
	}
	g := &RequestGenerator{
		gen:     gen,
		arrival: cfg.Arrival,
		arr:     rand.New(rand.NewSource(layerSeed(gen.cfg.Seed, arrivalStream))),
	}
	n := gen.cfg.Devices
	g.batch = RequestBatch{
		TopK:      gen.cfg.TopK,
		PerDevice: make([]int, n),
		Offsets:   make([]int, n+1),
		Choices:   make([][]int32, gen.cfg.Layers),
	}
	return g, nil
}

// Config returns the (defaulted) underlying generator configuration.
func (g *RequestGenerator) Config() GeneratorConfig { return g.gen.Config() }

// Arrival returns the configured traffic shape.
func (g *RequestGenerator) Arrival() ArrivalShape { return g.arrival }

// ApplyDrift applies an epoch-boundary drift step to the popularity
// process, exactly as Generator.ApplyDrift.
func (g *RequestGenerator) ApplyDrift(cfg DriftConfig) error { return g.gen.ApplyDrift(cfg) }

// rate returns this iteration's arrival rate per device, as a multiple of
// the configured mean. It consumes only the arrival stream.
func (g *RequestGenerator) rate() float64 {
	switch g.arrival {
	case ArrivalBursty:
		if g.burst {
			if g.arr.Float64() < arrivalBurstExit {
				g.burst = false
			}
		} else if g.arr.Float64() < arrivalBurstEnter {
			g.burst = true
		}
		if g.burst {
			return arrivalBurstyPeak
		}
		return arrivalBurstyBase
	default: // diurnal
		return 1 + arrivalDiurnalAmp*math.Sin(2*math.Pi*float64(g.iter)/ArrivalPeriod)
	}
}

// poisson draws a Poisson(lambda) variate from rng: Knuth's product
// method for small rates, a rounded-normal approximation for large ones.
// Both branches consume a bounded number of draws and are deterministic
// for a given stream position.
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda < 30 {
		limit := math.Exp(-lambda)
		p, k := 1.0, 0
		for p > limit {
			p *= rng.Float64()
			k++
		}
		return k - 1
	}
	v := int(math.Round(lambda + math.Sqrt(lambda)*rng.NormFloat64()))
	if v < 0 {
		v = 0
	}
	return v
}

// StepInto advances one decode iteration: it draws the per-device arrival
// counts, samples every request's top-k expert choices per layer, and
// writes the aggregated routing matrices into dst (grown or replaced as
// in Generator.StepInto). The returned batch is owned by the generator
// and overwritten by the next Step.
func (g *RequestGenerator) StepInto(dst []*RoutingMatrix) ([]*RoutingMatrix, *RequestBatch) {
	cfg := g.gen.cfg
	n, e, L, K := cfg.Devices, cfg.Experts, cfg.Layers, cfg.TopK

	// Arrivals first, serially, from the dedicated stream: the layer
	// fan-out below depends only on these fixed counts.
	lambda := g.rate() * float64(cfg.TokensPerDevice)
	total := 0
	for i := 0; i < n; i++ {
		g.batch.Offsets[i] = total
		c := poisson(g.arr, lambda)
		g.batch.PerDevice[i] = c
		total += c
	}
	g.batch.Offsets[n] = total
	g.iter++
	g.gen.iter++

	if cap(dst) < L {
		grown := make([]*RoutingMatrix, L)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:L]

	sample := func(l int) {
		g.gen.evolveLayer(l)
		m := dst[l]
		if m == nil || m.N != n || m.E != e {
			m = NewRoutingMatrix(n, e)
			dst[l] = m
		}
		if need := total * K; cap(g.batch.Choices[l]) < need {
			g.batch.Choices[l] = make([]int32, need)
		}
		choices := g.batch.Choices[l][:total*K]
		g.batch.Choices[l] = choices

		sc := genScratchPool.Get().(*genScratch)
		sc.resize(e)
		g.gen.compressedInto(sc.base, l)
		rng := g.gen.layers[l].rng
		for i := 0; i < n; i++ {
			row := m.R[i]
			for j := range row {
				row[j] = 0
			}
			if g.batch.PerDevice[i] == 0 {
				continue
			}
			// The device's perturbed routing distribution, as in training
			// synthesis, turned into a CDF for inversion sampling.
			for j := range sc.probs {
				sc.probs[j] = sc.base[j] + rng.NormFloat64()*cfg.DeviceNoise
			}
			softmaxInto(sc.probs, sc.probs)
			cum := 0.0
			for j := range sc.probs {
				cum += sc.probs[j]
				sc.probs[j] = cum
			}
			base := g.batch.Offsets[i] * K
			for r := 0; r < g.batch.PerDevice[i]; r++ {
				reqBase := base + r*K
				for k := 0; k < K; k++ {
					j := sampleDistinct(rng, sc.probs, choices[reqBase:reqBase+k])
					choices[reqBase+k] = int32(j)
					row[j]++
				}
			}
		}
		genScratchPool.Put(sc)
	}

	workers := par.Workers(cfg.Parallelism)
	if workers <= 1 {
		for l := 0; l < L; l++ {
			sample(l)
		}
	} else {
		_ = par.ForEach(workers, L, func(l int) error {
			sample(l)
			return nil
		})
	}
	return dst, &g.batch
}

// Step is StepInto with freshly allocated matrices.
func (g *RequestGenerator) Step() ([]*RoutingMatrix, *RequestBatch) {
	return g.StepInto(make([]*RoutingMatrix, g.gen.cfg.Layers))
}

// sampleDistinct draws one expert index by CDF inversion, rejecting
// indices already present in taken (a request's k choices are distinct).
// After a bounded number of rejections it falls back to scanning forward
// from the last draw, which terminates because len(taken) < len(cdf).
func sampleDistinct(rng *rand.Rand, cdf []float64, taken []int32) int {
	j := 0
	for attempt := 0; attempt < 16; attempt++ {
		j = invertCDF(cdf, rng.Float64())
		if !contains(taken, int32(j)) {
			return j
		}
	}
	for contains(taken, int32(j)) {
		j = (j + 1) % len(cdf)
	}
	return j
}

// invertCDF returns the smallest index with cdf[index] >= u (binary
// search; cdf is nondecreasing with cdf[len-1] ~= 1).
func invertCDF(cdf []float64, u float64) int {
	lo, hi := 0, len(cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func contains(s []int32, v int32) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
