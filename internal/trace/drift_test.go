package trace

import (
	"testing"

	"laermoe/internal/stats"
)

func driftGen(t *testing.T, seed int64) *Generator {
	t.Helper()
	g, err := NewGenerator(GeneratorConfig{
		Devices: 8, Experts: 8, Layers: 2, TokensPerDevice: 2048, TopK: 2, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// epochImbalance steps the generator through one epoch and returns the mean
// max/mean expert-load ratio of layer 0.
func epochImbalance(g *Generator, iters int) float64 {
	sum := 0.0
	for i := 0; i < iters; i++ {
		sum += stats.Imbalance(g.Step()[0].ExpertLoads())
	}
	return sum / float64(iters)
}

func TestDriftStabilizingConvergesTowardUniform(t *testing.T) {
	g := driftGen(t, 3)
	first := epochImbalance(g, 6)
	for e := 0; e < 8; e++ {
		if err := g.ApplyDrift(DriftConfig{Model: DriftStabilizing}); err != nil {
			t.Fatal(err)
		}
	}
	last := epochImbalance(g, 6)
	if last >= first {
		t.Fatalf("stabilizing drift did not reduce imbalance: first epoch %.3f, late epoch %.3f", first, last)
	}
	if last > 1.2 {
		t.Fatalf("after 8 stabilizing epochs imbalance should be near 1.0, got %.3f", last)
	}
}

func TestDriftMigrationMovesHotExpert(t *testing.T) {
	g := driftGen(t, 5)
	hotOf := func() int {
		p := g.ExpertProbabilities(0)
		best := 0
		for j, v := range p {
			if v > p[best] {
				best = j
			}
		}
		return best
	}
	before := hotOf()
	moved := false
	for e := 0; e < 6 && !moved; e++ {
		if err := g.ApplyDrift(DriftConfig{Model: DriftMigration, Rate: 1}); err != nil {
			t.Fatal(err)
		}
		moved = hotOf() != before
	}
	if !moved {
		t.Fatalf("migration drift at rate 1 never moved the hot expert from %d", before)
	}
}

func TestDriftBurstyRedrawsLogits(t *testing.T) {
	g := driftGen(t, 7)
	before := append([]float64(nil), g.layers[0].logits...)
	if err := g.ApplyDrift(DriftConfig{Model: DriftBursty, Rate: 1}); err != nil {
		t.Fatal(err)
	}
	changed := 0
	for j, v := range g.layers[0].logits {
		if v != before[j] {
			changed++
		}
	}
	if changed == 0 {
		t.Fatal("bursty drift at rate 1 changed no logits")
	}
}

func TestDriftNoneIsIdentity(t *testing.T) {
	g := driftGen(t, 9)
	before := append([]float64(nil), g.layers[0].logits...)
	if err := g.ApplyDrift(DriftConfig{}); err != nil {
		t.Fatal(err)
	}
	for j, v := range g.layers[0].logits {
		if v != before[j] {
			t.Fatalf("none drift changed logit %d: %g -> %g", j, before[j], v)
		}
	}
}

// TestDriftDeterminism: equal seeds and equal drift sequences keep two
// generators in lockstep, including the randomness drift itself consumes.
func TestDriftDeterminism(t *testing.T) {
	for _, m := range DriftModels() {
		a, b := driftGen(t, 11), driftGen(t, 11)
		for e := 0; e < 3; e++ {
			if err := a.ApplyDrift(DriftConfig{Model: m}); err != nil {
				t.Fatal(err)
			}
			if err := b.ApplyDrift(DriftConfig{Model: m}); err != nil {
				t.Fatal(err)
			}
			ma, mb := a.Step(), b.Step()
			for l := range ma {
				for i := range ma[l].R {
					for j := range ma[l].R[i] {
						if ma[l].R[i][j] != mb[l].R[i][j] {
							t.Fatalf("drift %s: generators diverged at epoch %d layer %d (%d,%d)", m, e, l, i, j)
						}
					}
				}
			}
		}
	}
}

func TestDriftConfigValidate(t *testing.T) {
	if err := (DriftConfig{Model: "sideways"}).Validate(); err == nil {
		t.Fatal("unknown drift model accepted")
	}
	if err := (DriftConfig{Model: DriftBursty, Rate: 1.5}).Validate(); err == nil {
		t.Fatal("out-of-range drift rate accepted")
	}
	if err := (DriftConfig{Model: DriftBursty, Rate: -0.1}).Validate(); err == nil {
		t.Fatal("negative drift rate accepted")
	}
	g := driftGen(t, 13)
	if err := g.ApplyDrift(DriftConfig{Model: "sideways"}); err == nil {
		t.Fatal("ApplyDrift accepted unknown model")
	}
}
