package trace

import "testing"

// BenchmarkGeneratorStep measures one iteration of synthetic routing at
// the paper's evaluation scale (32 devices, 32 layers).
func BenchmarkGeneratorStep(b *testing.B) {
	// Parallelism pinned to 1 so the number measures the synthesis code,
	// not the host's core count (and stays comparable across machines in
	// benchmarks/baseline.txt).
	g, err := NewGenerator(GeneratorConfig{
		Devices: 32, Experts: 8, Layers: 32, TokensPerDevice: 16384, TopK: 2,
		Parallelism: 1, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Step()
	}
}

// BenchmarkGeneratorStepLarge measures trace synthesis at the production
// shape of the scale experiment (512 devices, 2048 experts) — the regime
// where apportion's remainder handling and per-step allocation dominate.
func BenchmarkGeneratorStepLarge(b *testing.B) {
	g, err := NewGenerator(GeneratorConfig{
		Devices: 512, Experts: 2048, Layers: 1, TokensPerDevice: 2048, TopK: 2,
		Parallelism: 1, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Step()
	}
}

// BenchmarkGeneratorStepInto is BenchmarkGeneratorStepLarge on the
// zero-allocation reuse path the online engine drives.
func BenchmarkGeneratorStepInto(b *testing.B) {
	g, err := NewGenerator(GeneratorConfig{
		Devices: 512, Experts: 2048, Layers: 1, TokensPerDevice: 2048, TopK: 2,
		Parallelism: 1, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	var bufs []*RoutingMatrix
	bufs = g.StepInto(bufs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bufs = g.StepInto(bufs)
	}
}

// BenchmarkApportion measures largest-remainder rounding alone at E=4096,
// where the remainder selection is the asymptotic bottleneck.
func BenchmarkApportion(b *testing.B) {
	const e = 4096
	p := make([]float64, e)
	sum := 0.0
	for j := range p {
		p[j] = 1 + float64(j%17)
		sum += p[j]
	}
	for j := range p {
		p[j] /= sum
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		apportion(p, 8192)
	}
}
