package trace

import "testing"

// BenchmarkGeneratorStep measures one iteration of synthetic routing at
// the paper's evaluation scale (32 devices, 32 layers).
func BenchmarkGeneratorStep(b *testing.B) {
	g, err := NewGenerator(GeneratorConfig{
		Devices: 32, Experts: 8, Layers: 32, TokensPerDevice: 16384, TopK: 2, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Step()
	}
}
