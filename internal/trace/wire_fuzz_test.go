package trace

import (
	"encoding/json"
	"math/rand"
	"testing"
)

// FuzzWireDeltaRoundTrip pins the wire contract: for any pair of same-shape
// matrices, Diff → Wire → JSON → decode → Check+Apply onto prev reproduces
// next exactly, and the decoded delta revalidates clean against the shape.
func FuzzWireDeltaRoundTrip(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(3), uint8(8))
	f.Add(int64(7), uint8(1), uint8(1), uint8(0))
	f.Add(int64(42), uint8(9), uint8(6), uint8(30))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, eRaw, edits uint8) {
		n := int(nRaw)%12 + 1
		e := int(eRaw)%12 + 1
		rng := rand.New(rand.NewSource(seed))
		prev := NewRoutingMatrix(n, e)
		for i := 0; i < n; i++ {
			for j := 0; j < e; j++ {
				prev.R[i][j] = rng.Intn(50)
			}
		}
		next := prev.Clone()
		for k := 0; k < int(edits); k++ {
			i, j := rng.Intn(n), rng.Intn(e)
			next.R[i][j] = rng.Intn(50)
		}
		d, err := Diff(prev, next)
		if err != nil {
			t.Fatalf("Diff: %v", err)
		}
		w := d.Wire()
		if w.Cells() != d.Len() {
			t.Fatalf("wire carries %d cells, delta has %d", w.Cells(), d.Len())
		}
		blob, err := json.Marshal(w)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var decoded WireDelta
		if err := json.Unmarshal(blob, &decoded); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if err := decoded.Validate(n, e); err != nil {
			t.Fatalf("decoded delta fails Validate: %v", err)
		}
		got := prev.Clone()
		if err := decoded.Check(got); err != nil {
			t.Fatalf("Check: %v", err)
		}
		decoded.Apply(got)
		for i := 0; i < n; i++ {
			for j := 0; j < e; j++ {
				if got.R[i][j] != next.R[i][j] {
					t.Fatalf("cell (%d,%d) = %d after round-trip apply, want %d", i, j, got.R[i][j], next.R[i][j])
				}
			}
		}
	})
}
