// Wire form of the drift-delta view: the serializable sparse observation
// update a client posts instead of a dense routing matrix once its expert
// loads have stabilized. A WireDelta carries, per changed expert, the flat
// (device, diff) pairs of that expert's changed column cells — exactly the
// structure RoutingDelta/ExpertLoadDelta maintain in memory, grouped by
// expert so a stationary epoch serializes in O(changed cells) bytes
// instead of O(N·E).
//
// The contract mirrors the in-memory delta: applying the wire delta of
// next−prev onto (a copy of) prev reproduces next exactly, cell for cell —
// FuzzWireDeltaRoundTrip pins that through a JSON round-trip. Check-then-
// Apply splits validation from mutation so a caller holding several layers
// can verify all of them before mutating any (cross-layer atomicity for a
// retained per-session baseline).
package trace

import (
	"fmt"
)

// WireExpertDelta is one changed expert's column update: Cells holds flat
// (device, diff) pairs in ascending device order.
type WireExpertDelta struct {
	Expert int   `json:"e"`
	Cells  []int `json:"c"`
}

// WireDelta is the serializable sparse difference between two consecutive
// routing matrices of one layer. Experts appear in ascending order; an
// empty (or nil) Experts list is a valid delta meaning "unchanged".
type WireDelta struct {
	Experts []WireExpertDelta `json:"experts,omitempty"`
}

// Cells returns the number of changed cells the delta carries.
func (w *WireDelta) Cells() int {
	total := 0
	for _, x := range w.Experts {
		total += len(x.Cells) / 2
	}
	return total
}

// Validate checks the delta's structure against an n-device, e-expert
// matrix shape: expert indices in range and strictly ascending, per-expert
// cell lists non-empty with even length, device indices in range and
// strictly ascending within an expert, and no zero diffs (a zero diff is
// not a change; rejecting it keeps the encoding canonical). It does not
// look at matrix contents — Check does.
func (w *WireDelta) Validate(n, e int) error {
	prevExpert := -1
	for _, x := range w.Experts {
		if x.Expert < 0 || x.Expert >= e {
			return fmt.Errorf("trace: wire delta expert %d out of range [0,%d)", x.Expert, e)
		}
		if x.Expert <= prevExpert {
			return fmt.Errorf("trace: wire delta experts not strictly ascending at %d", x.Expert)
		}
		prevExpert = x.Expert
		if len(x.Cells) == 0 || len(x.Cells)%2 != 0 {
			return fmt.Errorf("trace: wire delta expert %d has %d cell values, want a non-empty even count", x.Expert, len(x.Cells))
		}
		prevDev := -1
		for i := 0; i < len(x.Cells); i += 2 {
			dev, diff := x.Cells[i], x.Cells[i+1]
			if dev < 0 || dev >= n {
				return fmt.Errorf("trace: wire delta expert %d device %d out of range [0,%d)", x.Expert, dev, n)
			}
			if dev <= prevDev {
				return fmt.Errorf("trace: wire delta expert %d devices not strictly ascending at %d", x.Expert, dev)
			}
			prevDev = dev
			if diff == 0 {
				return fmt.Errorf("trace: wire delta expert %d device %d carries a zero diff", x.Expert, dev)
			}
		}
	}
	return nil
}

// Check verifies the delta can be applied to m: structurally valid for m's
// shape and no cell driven negative. m is not modified.
func (w *WireDelta) Check(m *RoutingMatrix) error {
	if err := w.Validate(m.N, m.E); err != nil {
		return err
	}
	for _, x := range w.Experts {
		for i := 0; i < len(x.Cells); i += 2 {
			dev, diff := x.Cells[i], x.Cells[i+1]
			if m.R[dev][x.Expert]+diff < 0 {
				return fmt.Errorf("trace: wire delta drives cell (%d,%d) negative (%d%+d)", dev, x.Expert, m.R[dev][x.Expert], diff)
			}
		}
	}
	return nil
}

// Apply adds the delta to m in place. Callers must have run Check (on this
// delta against this matrix) first; Apply itself performs no validation so
// a multi-layer caller can make the whole batch atomic: check every layer,
// then apply every layer.
func (w *WireDelta) Apply(m *RoutingMatrix) {
	for _, x := range w.Experts {
		for i := 0; i < len(x.Cells); i += 2 {
			m.R[x.Cells[i]][x.Expert] += x.Cells[i+1]
		}
	}
}

// WireDiff computes the wire form of next − prev directly from a retained
// matrix and a dense row set (the shape a JSON observation decodes to),
// without materializing a RoutingDelta. rows must be prev's shape; the
// caller has validated that (it is the serve layer's dense-path
// validation). The result is canonical: experts ascending, devices
// ascending within each expert.
func WireDiff(prev *RoutingMatrix, rows [][]int) *WireDelta {
	// Pass 1: count changed cells per expert so pass 2 can slab-allocate.
	counts := make([]int, prev.E)
	changedExperts := 0
	for i := 0; i < prev.N; i++ {
		prow, nrow := prev.R[i], rows[i]
		for j, nv := range nrow {
			if nv != prow[j] {
				if counts[j] == 0 {
					changedExperts++
				}
				counts[j]++
			}
		}
	}
	w := &WireDelta{}
	if changedExperts == 0 {
		return w
	}
	w.Experts = make([]WireExpertDelta, 0, changedExperts)
	// Pass 2: one cell slab, sliced per expert; filling device-major per
	// expert keeps devices ascending.
	slab := make([]int, 0, 2*totalCells(counts))
	offsets := make([]int, prev.E)
	for j := 0; j < prev.E; j++ {
		if counts[j] == 0 {
			continue
		}
		start := len(slab)
		slab = slab[:start+2*counts[j]]
		offsets[j] = start
		w.Experts = append(w.Experts, WireExpertDelta{Expert: j, Cells: slab[start : start+2*counts[j] : start+2*counts[j]]})
	}
	fill := make([]int, prev.E)
	for i := 0; i < prev.N; i++ {
		prow, nrow := prev.R[i], rows[i]
		for j, nv := range nrow {
			if nv != prow[j] {
				at := offsets[j] + 2*fill[j]
				slab[at], slab[at+1] = i, nv-prow[j]
				fill[j]++
			}
		}
	}
	return w
}

func totalCells(counts []int) int {
	t := 0
	for _, c := range counts {
		t += c
	}
	return t
}

// Wire converts an in-memory RoutingDelta to its wire form (canonical
// ordering: experts ascending, devices ascending within an expert — the
// in-memory cells are row-major, so this regroups them by expert).
func (d *RoutingDelta) Wire() *WireDelta {
	counts := make([]int, d.E)
	changedExperts := 0
	for _, c := range d.Cells {
		if counts[c.Expert] == 0 {
			changedExperts++
		}
		counts[c.Expert]++
	}
	w := &WireDelta{}
	if changedExperts == 0 {
		return w
	}
	w.Experts = make([]WireExpertDelta, 0, changedExperts)
	slab := make([]int, 0, 2*len(d.Cells))
	offsets := make([]int, d.E)
	for j := 0; j < d.E; j++ {
		if counts[j] == 0 {
			continue
		}
		start := len(slab)
		slab = slab[:start+2*counts[j]]
		offsets[j] = start
		w.Experts = append(w.Experts, WireExpertDelta{Expert: j, Cells: slab[start : start+2*counts[j] : start+2*counts[j]]})
	}
	fill := make([]int, d.E)
	// d.Cells is row-major (device ascending within each expert's view), so
	// appending in order keeps each expert's devices ascending.
	for _, c := range d.Cells {
		at := offsets[c.Expert] + 2*fill[c.Expert]
		slab[at], slab[at+1] = c.Device, c.Diff
		fill[c.Expert]++
	}
	return w
}
