package trace

import "fmt"

// DriftModel names an epoch-scale transformation of the routing
// distribution. The per-iteration AR(1) walk models the drift visible
// inside a training window (Fig. 1a); a DriftModel models the slower,
// epoch-scale regime changes the online re-layout engine must track:
//
//   - DriftStabilizing: expert load fluctuates early and stabilizes late
//     ("Prediction Is All MoE Needs", Cong et al.) — every epoch compresses
//     the popularity logits and damps the hotspot-jump rate, so routing
//     converges toward uniform.
//   - DriftBursty: a random subset of experts is re-drawn from a wider
//     distribution each epoch — abrupt hot-set replacements, the regime
//     that punishes any layout planned from stale data.
//   - DriftMigration: the popularity vector blends toward a cyclic shift
//     of itself, so the identity of the hot experts walks across the
//     expert index space while the overall concentration is preserved
//     (Least-Loaded Expert Parallelism, Nguyen et al.).
//
// DriftNone leaves the process untouched (the epoch boundary is purely
// administrative), which isolates replanning overheads in experiments.
type DriftModel string

const (
	DriftNone        DriftModel = "none"
	DriftStabilizing DriftModel = "stabilizing"
	DriftBursty      DriftModel = "bursty"
	DriftMigration   DriftModel = "migration"
)

// DriftModels lists every drift model accepted by DriftConfig.
func DriftModels() []DriftModel {
	return []DriftModel{DriftNone, DriftStabilizing, DriftBursty, DriftMigration}
}

// DriftConfig parameterizes the epoch-boundary drift applied by
// Generator.ApplyDrift.
type DriftConfig struct {
	Model DriftModel

	// Rate is the drift strength in (0,1]; 0 selects the default 0.5.
	//   - stabilizing: per-epoch multiplicative decay of the logit scale
	//     (and of the hotspot-jump probability) is 1-Rate/2.
	//   - bursty: the expected fraction of experts re-drawn per epoch.
	//   - migration: the blend weight toward the shifted popularity vector.
	Rate float64
}

func (c DriftConfig) withDefaults() DriftConfig {
	if c.Model == "" {
		c.Model = DriftNone
	}
	if c.Rate == 0 {
		c.Rate = 0.5
	}
	return c
}

// Validate reports configuration errors.
func (c DriftConfig) Validate() error {
	switch c.Model {
	case "", DriftNone, DriftStabilizing, DriftBursty, DriftMigration:
	default:
		return fmt.Errorf("trace: unknown drift model %q (have %v)", c.Model, DriftModels())
	}
	if c.Rate < 0 || c.Rate > 1 {
		return fmt.Errorf("trace: drift rate %g out of [0,1]", c.Rate)
	}
	return nil
}

// ApplyDrift applies one epoch boundary's worth of drift to every layer's
// popularity logits. Consecutive epochs stay correlated under every model
// (the transformations are partial, not redraws), which is what makes
// planning from the previous epoch's observations meaningful. Randomized
// drifts draw from each layer's own stream, so two generators with equal
// seeds and equal ApplyDrift sequences stay in lockstep — per layer.
func (g *Generator) ApplyDrift(cfg DriftConfig) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	cfg = cfg.withDefaults()
	switch cfg.Model {
	case DriftNone:
		return nil
	case DriftStabilizing:
		decay := 1 - cfg.Rate/2
		g.cfg.Skew *= decay
		g.cfg.JumpProb *= decay
		for l := range g.layers {
			logits := g.layers[l].logits
			for j := range logits {
				logits[j] *= decay
			}
		}
	case DriftBursty:
		for l := range g.layers {
			st := &g.layers[l]
			for j := range st.logits {
				if st.rng.Float64() < cfg.Rate {
					st.logits[j] = st.rng.NormFloat64() * g.cfg.Skew * 1.5
				}
			}
		}
	case DriftMigration:
		// Blend toward a one-position cyclic shift: the hot set's identity
		// walks across the index space at Rate experts-per-epoch worth of
		// probability mass, preserving the overall concentration.
		e := g.cfg.Experts
		if cap(g.shifted) < e {
			g.shifted = make([]float64, e)
		}
		shifted := g.shifted[:e]
		for l := range g.layers {
			logits := g.layers[l].logits
			for j := 0; j < e; j++ {
				shifted[j] = logits[(j+e-1)%e]
			}
			for j := 0; j < e; j++ {
				logits[j] = (1-cfg.Rate)*logits[j] + cfg.Rate*shifted[j]
			}
		}
	}
	return nil
}
