package trace

import (
	"encoding/json"
	"strings"
	"testing"
)

func wireTestMatrices(t *testing.T) (prev, next *RoutingMatrix) {
	t.Helper()
	prev = NewRoutingMatrix(4, 3)
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			prev.R[i][j] = 10*i + j + 1
		}
	}
	next = prev.Clone()
	// Token-conserving sparse move plus an independent bump.
	next.R[0][1] -= 1
	next.R[2][1] += 1
	next.R[3][0] += 5
	return prev, next
}

func TestWireRoundTripMatchesDense(t *testing.T) {
	prev, next := wireTestMatrices(t)
	d, err := Diff(prev, next)
	if err != nil {
		t.Fatalf("Diff: %v", err)
	}
	w := d.Wire()
	if got := w.Cells(); got != 3 {
		t.Fatalf("Cells() = %d, want 3", got)
	}
	blob, err := json.Marshal(w)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var decoded WireDelta
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	got := prev.Clone()
	if err := decoded.Check(got); err != nil {
		t.Fatalf("Check: %v", err)
	}
	decoded.Apply(got)
	for i := 0; i < next.N; i++ {
		for j := 0; j < next.E; j++ {
			if got.R[i][j] != next.R[i][j] {
				t.Fatalf("cell (%d,%d) = %d after apply, want %d", i, j, got.R[i][j], next.R[i][j])
			}
		}
	}
}

func TestWireDiffMatchesRoutingDeltaWire(t *testing.T) {
	prev, next := wireTestMatrices(t)
	d, err := Diff(prev, next)
	if err != nil {
		t.Fatalf("Diff: %v", err)
	}
	fromDelta, err := json.Marshal(d.Wire())
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	fromRows, err := json.Marshal(WireDiff(prev, next.R))
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if string(fromDelta) != string(fromRows) {
		t.Fatalf("Wire() and WireDiff disagree:\n%s\n%s", fromDelta, fromRows)
	}
}

func TestWireEmptyDelta(t *testing.T) {
	m := NewRoutingMatrix(2, 2)
	w := WireDiff(m, m.R)
	if w.Cells() != 0 {
		t.Fatalf("self-diff has %d cells, want 0", w.Cells())
	}
	blob, err := json.Marshal(w)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if string(blob) != "{}" {
		t.Fatalf("empty delta serializes to %s, want {}", blob)
	}
	if err := w.Check(m); err != nil {
		t.Fatalf("Check on empty delta: %v", err)
	}
}

func TestWireValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		w    WireDelta
		want string
	}{
		{"expert out of range", WireDelta{Experts: []WireExpertDelta{{Expert: 3, Cells: []int{0, 1}}}}, "out of range"},
		{"negative expert", WireDelta{Experts: []WireExpertDelta{{Expert: -1, Cells: []int{0, 1}}}}, "out of range"},
		{"experts not ascending", WireDelta{Experts: []WireExpertDelta{{Expert: 1, Cells: []int{0, 1}}, {Expert: 0, Cells: []int{0, 1}}}}, "ascending"},
		{"duplicate expert", WireDelta{Experts: []WireExpertDelta{{Expert: 1, Cells: []int{0, 1}}, {Expert: 1, Cells: []int{1, 1}}}}, "ascending"},
		{"odd cell count", WireDelta{Experts: []WireExpertDelta{{Expert: 0, Cells: []int{0, 1, 1}}}}, "even count"},
		{"empty cells", WireDelta{Experts: []WireExpertDelta{{Expert: 0, Cells: nil}}}, "even count"},
		{"device out of range", WireDelta{Experts: []WireExpertDelta{{Expert: 0, Cells: []int{2, 1}}}}, "out of range"},
		{"negative device", WireDelta{Experts: []WireExpertDelta{{Expert: 0, Cells: []int{-1, 1}}}}, "out of range"},
		{"devices not ascending", WireDelta{Experts: []WireExpertDelta{{Expert: 0, Cells: []int{1, 1, 0, 1}}}}, "ascending"},
		{"duplicate device", WireDelta{Experts: []WireExpertDelta{{Expert: 0, Cells: []int{1, 1, 1, 2}}}}, "ascending"},
		{"zero diff", WireDelta{Experts: []WireExpertDelta{{Expert: 0, Cells: []int{0, 0}}}}, "zero diff"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.w.Validate(2, 3)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestWireCheckRejectsNegativeResult(t *testing.T) {
	m := NewRoutingMatrix(2, 2)
	m.R[1][0] = 3
	w := WireDelta{Experts: []WireExpertDelta{{Expert: 0, Cells: []int{1, -4}}}}
	err := w.Check(m)
	if err == nil || !strings.Contains(err.Error(), "negative") {
		t.Fatalf("Check = %v, want negative-cell error", err)
	}
	// The boundary case — driving a cell exactly to zero — is fine.
	ok := WireDelta{Experts: []WireExpertDelta{{Expert: 0, Cells: []int{1, -3}}}}
	if err := ok.Check(m); err != nil {
		t.Fatalf("Check on exact-zero delta: %v", err)
	}
}
