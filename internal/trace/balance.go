package trace

import "sync"

// ScoreBalanceBlend is the default strength of score-distribution
// balancing: each device's routing distribution is pulled halfway toward
// uniform before apportionment. Fixed rather than configurable — the
// score-balance policy is a published-baseline reproduction, not a tuning
// surface ("From Score Distributions to Balance").
const ScoreBalanceBlend = 0.5

// balanceScratch pools the per-row float/remainder working set of
// ScoreBalanceInto so the dispatch hot path stays allocation-free in
// steady state.
type balanceScratch struct {
	p    []float64
	rems []remEntry
}

var balancePool = sync.Pool{New: func() interface{} { return new(balanceScratch) }}

func (sc *balanceScratch) resize(e int) {
	if cap(sc.p) < e {
		sc.p = make([]float64, e)
		sc.rems = make([]remEntry, e)
	}
	sc.p = sc.p[:e]
	sc.rems = sc.rems[:e]
}

// ScoreBalanceInto reshapes a routing matrix toward balance: every
// device's empirical routing distribution p is blended with the uniform
// distribution, q = (1-blend)*p + blend/E, and the device's exact token
// total is re-apportioned under q (largest-remainder, deterministic). Row
// sums are preserved exactly — the router moves tokens between experts,
// never creates or drops them — so the result is a valid routing matrix
// for the same traffic. blend = 0 is the identity (up to re-apportioning
// rounding), blend = 1 routes uniformly.
//
// dst is reused when it has the right shape (allocated otherwise) and may
// alias src; the reshaped matrix is returned.
func ScoreBalanceInto(dst, src *RoutingMatrix, blend float64) *RoutingMatrix {
	if dst == nil || dst.N != src.N || dst.E != src.E {
		dst = NewRoutingMatrix(src.N, src.E)
	}
	e := src.E
	uniform := blend / float64(e)
	sc := balancePool.Get().(*balanceScratch)
	sc.resize(e)
	for i := 0; i < src.N; i++ {
		row := src.R[i]
		total := 0
		for _, v := range row {
			total += v
		}
		if total == 0 {
			for j := range dst.R[i] {
				dst.R[i][j] = 0
			}
			continue
		}
		inv := (1 - blend) / float64(total)
		for j, v := range row {
			sc.p[j] = float64(v)*inv + uniform
		}
		apportionInto(dst.R[i], sc.p, total, sc.rems)
	}
	balancePool.Put(sc)
	return dst
}
