package trace

import (
	"bytes"
	"testing"
)

// matrixFromBytes deterministically derives a small routing matrix from
// fuzz input: dimensions from the first two bytes, cell values from the
// rest (missing bytes leave zeros).
func matrixFromBytes(data []byte) *RoutingMatrix {
	at := func(i int) byte {
		if i < len(data) {
			return data[i]
		}
		return 0
	}
	n := 1 + int(at(0))%8
	e := 1 + int(at(1))%8
	m := NewRoutingMatrix(n, e)
	idx := 2
	for i := 0; i < n; i++ {
		for j := 0; j < e; j++ {
			if idx < len(data) {
				m.R[i][j] = int(data[idx])
				idx++
			}
		}
	}
	return m
}

func sameMatrix(a, b *RoutingMatrix) bool {
	if a.N != b.N || a.E != b.E {
		return false
	}
	for i := range a.R {
		for j := range a.R[i] {
			if a.R[i][j] != b.R[i][j] {
				return false
			}
		}
	}
	return true
}

// FuzzTraceRoundTrip checks the two contracts of the trace wire format:
// decode(encode(t)) == t for every matrix, and arbitrary (corrupt) input
// must produce an error, never a panic or an unbounded allocation.
func FuzzTraceRoundTrip(f *testing.F) {
	// A valid two-iteration trace as one corpus seed.
	var valid bytes.Buffer
	w := NewWriter(&valid)
	for it := 0; it < 2; it++ {
		for l := 0; l < 2; l++ {
			if err := w.Write(it, l, matrixFromBytes([]byte{byte(it), byte(l), 7, 9, 11})); err != nil {
				f.Fatal(err)
			}
		}
	}
	if err := w.Flush(); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte(`{"iter":0,"layer":0,"n":1,"e":1,"r":[[3]]}`))
	f.Add([]byte(`{"iter":-1,"layer":0,"n":1,"e":1,"r":[[3]]}`))
	f.Add([]byte(`{"iter":99999999,"layer":0,"n":1,"e":1,"r":[[3]]}`))
	f.Add([]byte(`{"iter":0,"layer":0,"n":5,"e":1,"r":[[3]]}`))
	f.Add([]byte(`{"iter":0,"layer":0,"n":1,"e":1,"r":[[-3]]}`))
	f.Add([]byte("not json at all"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Corrupt-input safety: ReadAll on arbitrary bytes either fails
		// cleanly or yields matrices that survive a second round trip.
		if iters, err := ReadAll(bytes.NewReader(data)); err == nil {
			var buf bytes.Buffer
			tw := NewWriter(&buf)
			for it, layers := range iters {
				for l, m := range layers {
					if err := tw.Write(it, l, m); err != nil {
						t.Fatalf("re-encoding decoded trace failed: %v", err)
					}
				}
			}
			if err := tw.Flush(); err != nil {
				t.Fatal(err)
			}
			again, err := ReadAll(&buf)
			if err != nil {
				t.Fatalf("re-decoding re-encoded trace failed: %v", err)
			}
			if len(again) != len(iters) {
				t.Fatalf("round trip changed iteration count: %d -> %d", len(iters), len(again))
			}
			for it := range iters {
				if len(again[it]) != len(iters[it]) {
					t.Fatalf("round trip changed layer count at iteration %d", it)
				}
				for l := range iters[it] {
					if !sameMatrix(iters[it][l], again[it][l]) {
						t.Fatalf("round trip changed matrix at iteration %d layer %d", it, l)
					}
				}
			}
		}

		// Structured round trip: decode(encode(m)) == m for a matrix
		// derived from the fuzz input.
		m := matrixFromBytes(data)
		var buf bytes.Buffer
		tw := NewWriter(&buf)
		if err := tw.Write(0, 0, m); err != nil {
			t.Fatalf("encoding valid matrix failed: %v", err)
		}
		if err := tw.Flush(); err != nil {
			t.Fatal(err)
		}
		rec, err := NewReader(&buf).Next()
		if err != nil {
			t.Fatalf("decoding just-encoded matrix failed: %v", err)
		}
		got, err := rec.Matrix()
		if err != nil {
			t.Fatalf("rebuilding just-encoded matrix failed: %v", err)
		}
		if !sameMatrix(m, got) {
			t.Fatalf("decode(encode(m)) != m for %dx%d matrix", m.N, m.E)
		}
	})
}
