package trace

import (
	"reflect"
	"testing"
	"testing/quick"
)

// TestScoreBalanceRowSums: the reshaped matrix routes exactly the tokens
// the source routes, per device — the router moves tokens between
// experts, never creates or drops them.
func TestScoreBalanceRowSums(t *testing.T) {
	f := func(cells []uint16) bool {
		const n, e = 6, 5
		src := NewRoutingMatrix(n, e)
		for i := 0; i < n; i++ {
			for j := 0; j < e; j++ {
				if idx := i*e + j; idx < len(cells) {
					src.R[i][j] = int(cells[idx])
				}
			}
		}
		dst := ScoreBalanceInto(nil, src, ScoreBalanceBlend)
		for i := 0; i < n; i++ {
			want, got := 0, 0
			for j := 0; j < e; j++ {
				want += src.R[i][j]
				got += dst.R[i][j]
				if dst.R[i][j] < 0 {
					return false
				}
			}
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestScoreBalanceFlattens: on a fully concentrated adversarial trace
// (every device routes everything to expert 0), the reshaped routing's
// worst expert column is strictly below the untouched routing's.
func TestScoreBalanceFlattens(t *testing.T) {
	const n, e = 8, 8
	src := NewRoutingMatrix(n, e)
	for i := 0; i < n; i++ {
		src.R[i][0] = 1000
	}
	dst := ScoreBalanceInto(nil, src, ScoreBalanceBlend)
	colMax := func(m *RoutingMatrix) int {
		worst := 0
		for j := 0; j < e; j++ {
			col := 0
			for i := 0; i < n; i++ {
				col += m.R[i][j]
			}
			if col > worst {
				worst = col
			}
		}
		return worst
	}
	if got, was := colMax(dst), colMax(src); got >= was {
		t.Errorf("balanced worst expert load %d not below untouched %d", got, was)
	}
	// blend=0.5 on a point mass: expert 0 keeps 1-blend+blend/E of each
	// row (562.5 of 1000, up to largest-remainder rounding), the rest
	// split uniformly.
	if got := dst.R[0][0]; got < 562 || got > 563 {
		t.Errorf("concentrated expert kept %d of 1000, want 562 or 563", got)
	}
}

// TestScoreBalanceExtremes: blend 0 is the identity (re-apportioning an
// exact empirical distribution reproduces it), blend 1 routes uniformly.
func TestScoreBalanceExtremes(t *testing.T) {
	src := NewRoutingMatrix(2, 4)
	src.R[0] = []int{40, 30, 20, 10}
	src.R[1] = []int{0, 0, 100, 0}
	ident := ScoreBalanceInto(nil, src, 0)
	if !reflect.DeepEqual(ident.R, src.R) {
		t.Errorf("blend 0 reshaped the routing: %v -> %v", src.R, ident.R)
	}
	flat := ScoreBalanceInto(nil, src, 1)
	for i := range flat.R {
		for j, v := range flat.R[i] {
			if v != 25 {
				t.Errorf("blend 1 row %d expert %d = %d, want 25", i, j, v)
			}
		}
	}
}

// TestScoreBalanceAliasAndReuse: dst may alias src, and a right-shaped
// dst is reused rather than reallocated.
func TestScoreBalanceAliasAndReuse(t *testing.T) {
	src := NewRoutingMatrix(3, 4)
	for i := range src.R {
		src.R[i][i] = 90
		src.R[i][3] = 10
	}
	want := ScoreBalanceInto(nil, src, ScoreBalanceBlend)
	dst := NewRoutingMatrix(3, 4)
	if got := ScoreBalanceInto(dst, src, ScoreBalanceBlend); got != dst {
		t.Error("right-shaped dst was not reused")
	}
	if !reflect.DeepEqual(dst.R, want.R) {
		t.Errorf("reused dst differs: %v vs %v", dst.R, want.R)
	}
	if got := ScoreBalanceInto(src, src, ScoreBalanceBlend); got != src {
		t.Error("aliased call did not return src")
	}
	if !reflect.DeepEqual(src.R, want.R) {
		t.Errorf("in-place reshape differs: %v vs %v", src.R, want.R)
	}
}
