// Package trace generates and replays the routing workload that drives the
// simulator: per-iteration, per-layer matrices R[i][j] giving the number of
// token-to-expert assignments on device i destined for expert j (Table 1).
//
// The paper's Fig. 1(a) observes that during real Mixtral-8x7B training
// (i) a handful of experts are overloaded at almost every iteration,
// (ii) the hot set drifts over the course of training, and (iii) different
// layers have different hot sets. Lacking the proprietary training traces,
// this package substitutes a calibrated synthetic process with the same
// three properties: each layer carries a vector of expert-popularity logits
// that evolves as a mean-reverting AR(1) random walk with occasional
// hotspot jumps, and an auxiliary-loss weight compresses the logits toward
// uniform (the mechanism by which aux losses balance routing).
//
// Every layer owns an independent, deterministically seeded random stream,
// so layer synthesis parallelizes across the internal/par worker pool with
// byte-identical output at any worker count, and StepInto reuses
// caller-owned routing matrices plus pooled per-call scratch so
// steady-state synthesis allocates nothing.
package trace

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"laermoe/internal/par"
)

// RoutingMatrix is R: R[i][j] = token assignments on device i routed to
// expert j for one MoE layer in one iteration.
type RoutingMatrix struct {
	N int // devices
	E int // experts
	R [][]int
}

// NewRoutingMatrix returns a zeroed N x E matrix. One slab backs every
// row, so construction costs two allocations regardless of N.
func NewRoutingMatrix(n, e int) *RoutingMatrix {
	slab := make([]int, n*e)
	r := make([][]int, n)
	for i := range r {
		r[i] = slab[i*e : (i+1)*e : (i+1)*e]
	}
	return &RoutingMatrix{N: n, E: e, R: r}
}

// ExpertLoads returns the per-expert totals summed over devices
// (R.sum(axis=0) in the paper's algorithms).
func (m *RoutingMatrix) ExpertLoads() []float64 {
	return m.ExpertLoadsInto(nil)
}

// ExpertLoadsInto writes the per-expert totals into dst, reusing its
// capacity (dst may be nil), and returns it — the non-allocating variant
// of ExpertLoads for per-layer hot paths.
func (m *RoutingMatrix) ExpertLoadsInto(dst []float64) []float64 {
	if cap(dst) < m.E {
		dst = make([]float64, m.E)
	}
	dst = dst[:m.E]
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.N; i++ {
		for j := 0; j < m.E; j++ {
			dst[j] += float64(m.R[i][j])
		}
	}
	return dst
}

// DeviceTotals returns per-device totals (assignments originating on each
// device).
func (m *RoutingMatrix) DeviceTotals() []int {
	out := make([]int, m.N)
	for i := 0; i < m.N; i++ {
		for j := 0; j < m.E; j++ {
			out[i] += m.R[i][j]
		}
	}
	return out
}

// Total returns the total number of assignments in the matrix.
func (m *RoutingMatrix) Total() int {
	t := 0
	for i := 0; i < m.N; i++ {
		for j := 0; j < m.E; j++ {
			t += m.R[i][j]
		}
	}
	return t
}

// Clone returns a deep copy.
func (m *RoutingMatrix) Clone() *RoutingMatrix {
	c := NewRoutingMatrix(m.N, m.E)
	for i := range m.R {
		copy(c.R[i], m.R[i])
	}
	return c
}

// Validate checks dimensions and non-negativity.
func (m *RoutingMatrix) Validate() error {
	if len(m.R) != m.N {
		return fmt.Errorf("trace: matrix has %d rows, want %d", len(m.R), m.N)
	}
	for i, row := range m.R {
		if len(row) != m.E {
			return fmt.Errorf("trace: row %d has %d cols, want %d", i, len(row), m.E)
		}
		for j, v := range row {
			if v < 0 {
				return fmt.Errorf("trace: negative count at (%d,%d)", i, j)
			}
		}
	}
	return nil
}

// GeneratorConfig parameterizes the synthetic routing process.
type GeneratorConfig struct {
	Devices         int
	Experts         int
	Layers          int
	TokensPerDevice int // S: tokens per device per micro-batch
	TopK            int // K: assignments per token

	// Skew is the stationary standard deviation of the popularity logits;
	// 0 yields perfectly balanced routing. Calibrated default (1.0) gives
	// max/mean expert-load ratios around 2-4x at aux weight 0, matching
	// Fig. 1(a).
	Skew float64

	// AuxLossWeight is the auxiliary load-balancing loss weight. The
	// effective logits are scaled by 1/(1 + AuxGain*w), so larger weights
	// compress routing toward uniform (GShard/Switch-style behaviour).
	AuxLossWeight float64

	// AuxGain converts an aux-loss weight into logit compression. The
	// default (5e3) makes w=1e-2 nearly uniform while w=1e-4 only mildly
	// rebalances — the regime studied in Fig. 2 and Fig. 9.
	AuxGain float64

	// Persistence is the AR(1) coefficient of the logit random walk in
	// (0,1); closer to 1 means hot experts stay hot longer. Default 0.98.
	Persistence float64

	// JumpProb is the per-layer, per-iteration probability of a hotspot
	// jump (one expert's logit is re-drawn), producing the abrupt shifts
	// visible in Fig. 1(a). Default 0.02; a negative value disables jumps
	// (the zero value means "default", so 0 cannot).
	JumpProb float64

	// DeviceNoise is the relative standard deviation of per-device
	// popularity perturbations (different devices hold different data so
	// their routing differs slightly). Default 0.10.
	DeviceNoise float64

	// Float32Kernels opts layer synthesis into the float32-accumulation
	// softmax kernel (see kernels.go). It perturbs low-order probability
	// bits — and therefore routing counts — so it is strictly opt-in:
	// golden-pinned paths leave it false.
	Float32Kernels bool

	// Parallelism bounds the goroutines synthesizing independent layers in
	// Step/StepInto: 0 uses GOMAXPROCS, 1 forces serial. Layers own
	// independent random streams, so the trace is identical at any setting.
	Parallelism int

	Seed int64
}

func (c *GeneratorConfig) withDefaults() GeneratorConfig {
	out := *c
	if out.AuxGain == 0 {
		out.AuxGain = 5e3
	}
	if out.Persistence == 0 {
		out.Persistence = 0.98
	}
	if out.JumpProb == 0 {
		out.JumpProb = 0.02
	} else if out.JumpProb < 0 {
		out.JumpProb = 0
	}
	if out.DeviceNoise == 0 {
		out.DeviceNoise = 0.10
	}
	if out.Skew == 0 {
		out.Skew = 1.0
	}
	return out
}

// Validate reports configuration errors.
func (c *GeneratorConfig) Validate() error {
	switch {
	case c.Devices <= 0 || c.Experts <= 0 || c.Layers <= 0:
		return fmt.Errorf("trace: non-positive dimensions (N=%d E=%d L=%d)", c.Devices, c.Experts, c.Layers)
	case c.TokensPerDevice <= 0:
		return fmt.Errorf("trace: non-positive tokens per device")
	case c.TopK <= 0 || c.TopK > c.Experts:
		return fmt.Errorf("trace: top-k %d out of range for %d experts", c.TopK, c.Experts)
	case c.Skew < 0:
		return fmt.Errorf("trace: negative skew")
	}
	return nil
}

// layerState is one layer's popularity process: its logits and the random
// stream that evolves and samples them. Streams are seeded independently
// per layer (splitmix64 over the generator seed), which is what lets layer
// synthesis fan across workers without changing the trace.
type layerState struct {
	rng    *rand.Rand
	logits []float64
}

// Generator produces one RoutingMatrix per layer per call to Step,
// advancing the underlying popularity process between iterations.
type Generator struct {
	cfg    GeneratorConfig
	layers []layerState
	iter   int

	scratch genScratch // serial-path scratch (parallel workers use the pool)
	shifted []float64  // ApplyDrift migration scratch

	// prev retains a copy of the last emitted matrices, the baseline
	// StepDeltaInto diffs against (nil until the delta path is used).
	prev []*RoutingMatrix
}

// layerSeed derives layer l's independent stream seed from the generator
// seed via a splitmix64 finalizer, so nearby seeds (and nearby layers)
// decorrelate fully.
func layerSeed(seed int64, l int) int64 {
	z := uint64(seed) + (uint64(l)+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// NewGenerator builds a generator; the initial logits are drawn from the
// stationary distribution so the first iteration is already imbalanced.
func NewGenerator(cfg GeneratorConfig) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	full := cfg.withDefaults()
	g := &Generator{cfg: full}
	g.layers = make([]layerState, full.Layers)
	for l := range g.layers {
		st := &g.layers[l]
		st.rng = rand.New(rand.NewSource(layerSeed(full.Seed, l)))
		st.logits = make([]float64, full.Experts)
		for j := range st.logits {
			st.logits[j] = st.rng.NormFloat64() * full.Skew
		}
	}
	return g, nil
}

// Config returns the (defaulted) generator configuration.
func (g *Generator) Config() GeneratorConfig { return g.cfg }

// Iteration returns the number of completed Step calls.
func (g *Generator) Iteration() int { return g.iter }

// Step advances one training iteration and returns freshly allocated
// routing matrices for every layer. Hot paths that replay many iterations
// should call StepInto with a reused slice instead.
func (g *Generator) Step() []*RoutingMatrix {
	return g.StepInto(make([]*RoutingMatrix, g.cfg.Layers))
}

// StepInto advances one training iteration, writing each layer's routing
// matrix into dst (grown if needed; nil or wrongly shaped entries are
// replaced with fresh matrices) and returning it. With correctly shaped
// matrices supplied, steady-state synthesis performs no allocation.
// Layers fan across the worker pool per GeneratorConfig.Parallelism; the
// per-layer random streams make the result identical at any worker count.
func (g *Generator) StepInto(dst []*RoutingMatrix) []*RoutingMatrix {
	L := g.cfg.Layers
	if cap(dst) < L {
		grown := make([]*RoutingMatrix, L)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:L]
	workers := par.Workers(g.cfg.Parallelism)
	if workers <= 1 {
		for l := 0; l < L; l++ {
			g.evolveLayer(l)
			dst[l] = g.sampleLayerInto(dst[l], l, &g.scratch)
		}
	} else {
		// Errors are impossible here (the synth closure is total); ForEach
		// is used purely for its bounded deterministic fan-out.
		_ = par.ForEach(workers, L, func(l int) error {
			g.evolveLayer(l)
			sc := genScratchPool.Get().(*genScratch)
			dst[l] = g.sampleLayerInto(dst[l], l, sc)
			genScratchPool.Put(sc)
			return nil
		})
	}
	g.iter++
	return dst
}

// evolveLayer applies the mean-reverting AR(1) update with hotspot jumps,
// drawing only from the layer's own stream.
func (g *Generator) evolveLayer(l int) {
	st := &g.layers[l]
	rho := g.cfg.Persistence
	// Innovation variance chosen so the stationary std stays at Skew:
	// sigma^2 = Skew^2 * (1 - rho^2).
	sigma := g.cfg.Skew * math.Sqrt(1-rho*rho)
	for j := range st.logits {
		st.logits[j] = rho*st.logits[j] + sigma*st.rng.NormFloat64()
	}
	if st.rng.Float64() < g.cfg.JumpProb {
		j := st.rng.Intn(g.cfg.Experts)
		st.logits[j] = st.rng.NormFloat64() * g.cfg.Skew * 1.5
	}
}

// ExpertProbabilities returns the current global routing distribution of a
// layer after aux-loss compression (mainly for inspection and tests).
func (g *Generator) ExpertProbabilities(layer int) []float64 {
	out := make([]float64, g.cfg.Experts)
	g.compressedInto(out, layer)
	softmaxInto(out, out)
	return out
}

// compressedInto writes the aux-compressed logits of a layer into dst
// (len Experts).
func (g *Generator) compressedInto(dst []float64, layer int) {
	scale := 1.0 / (1.0 + g.cfg.AuxGain*g.cfg.AuxLossWeight)
	for j, v := range g.layers[layer].logits {
		dst[j] = v * scale
	}
}

// genScratch is the working set of one layer synthesis: the compressed
// base logits, the per-device perturbed logits/probabilities (in place)
// and the apportion remainder entries. Parallel workers recycle instances
// through genScratchPool; the serial path uses the generator's own.
type genScratch struct {
	base  []float64
	probs []float64
	rems  []remEntry
}

var genScratchPool = sync.Pool{New: func() interface{} { return new(genScratch) }}

func (sc *genScratch) resize(e int) {
	if cap(sc.base) < e {
		sc.base = make([]float64, e)
		sc.probs = make([]float64, e)
		sc.rems = make([]remEntry, e)
	}
	sc.base = sc.base[:e]
	sc.probs = sc.probs[:e]
	sc.rems = sc.rems[:e]
}

// sampleLayerInto converts the layer's popularity distribution into an
// integer routing matrix, reusing m when its shape matches. Each device
// perturbs the global distribution slightly (different data shards), then
// assigns exactly TokensPerDevice*TopK assignments using largest-remainder
// rounding so row sums are exact.
func (g *Generator) sampleLayerInto(m *RoutingMatrix, l int, sc *genScratch) *RoutingMatrix {
	n, e := g.cfg.Devices, g.cfg.Experts
	if m == nil || m.N != n || m.E != e {
		m = NewRoutingMatrix(n, e)
	}
	sc.resize(e)
	g.compressedInto(sc.base, l)
	rng := g.layers[l].rng
	perDevice := g.cfg.TokensPerDevice * g.cfg.TopK
	softmax := softmaxInto
	if g.cfg.Float32Kernels {
		softmax = softmax32Into
	}
	for i := 0; i < n; i++ {
		for j := range sc.probs {
			sc.probs[j] = sc.base[j] + rng.NormFloat64()*g.cfg.DeviceNoise
		}
		softmax(sc.probs, sc.probs)
		apportionInto(m.R[i], sc.probs, perDevice, sc.rems)
	}
	return m
}

// remEntry carries one expert's fractional remainder during apportioning.
type remEntry struct {
	idx  int
	frac float64
}

// apportion distributes total assignments across experts proportionally to
// p with exact total (largest-remainder method, deterministic).
func apportion(p []float64, total int) []int {
	out := make([]int, len(p))
	apportionInto(out, p, total, make([]remEntry, len(p)))
	return out
}

// apportionInto is apportion writing into out (len(p)) with caller-owned
// remainder scratch (len(p)). The remainder is handed to the largest
// fractional parts under (fraction desc, index asc) — a strict total order
// (indices are unique), so the winning set is unique and selecting it by
// deterministic quickselect (selectTopRems, O(E) average) is
// output-identical to the historical full sort and to a repeated linear
// scan with the same stable index tie-break.
func apportionInto(out []int, p []float64, total int, rems []remEntry) {
	n := len(p)
	assigned := 0
	for j, pj := range p {
		exact := pj * float64(total)
		v := int(exact)
		out[j] = v
		assigned += v
		rems[j] = remEntry{j, exact - float64(v)}
	}
	k := total - assigned
	if k <= 0 {
		return
	}
	if k < n {
		selectTopRems(rems, k)
		for i := 0; i < k; i++ {
			out[rems[i].idx]++
		}
		return
	}
	for i := 0; i < n; i++ {
		out[rems[i].idx]++
	}
	if k > n {
		// Degenerate inputs (p summing well below 1) leave more remainder
		// than experts; the historical scan dumped the excess on index 0.
		out[0] += k - n
	}
}

func softmax(logits []float64) []float64 {
	out := make([]float64, len(logits))
	softmaxInto(out, logits)
	return out
}

// softmaxInto writes softmax(logits) into dst; dst may alias logits.
func softmaxInto(dst, logits []float64) {
	maxL := math.Inf(-1)
	for _, v := range logits {
		if v > maxL {
			maxL = v
		}
	}
	var sum float64
	for i, v := range logits {
		dst[i] = math.Exp(v - maxL)
		sum += dst[i]
	}
	for i := range dst {
		dst[i] /= sum
	}
}

// Balanced returns a perfectly balanced routing matrix for the given shape
// (the "balanced" condition of Fig. 1(b)): every device splits its
// assignments evenly across experts, remainders round-robin by device so
// column sums stay even too.
func Balanced(devices, experts, tokensPerDevice, topK int) *RoutingMatrix {
	m := NewRoutingMatrix(devices, experts)
	perDevice := tokensPerDevice * topK
	for i := 0; i < devices; i++ {
		base := perDevice / experts
		rem := perDevice % experts
		for j := 0; j < experts; j++ {
			m.R[i][j] = base
			if (j+i)%experts < rem {
				m.R[i][j]++
			}
		}
	}
	return m
}
