// Package trace generates and replays the routing workload that drives the
// simulator: per-iteration, per-layer matrices R[i][j] giving the number of
// token-to-expert assignments on device i destined for expert j (Table 1).
//
// The paper's Fig. 1(a) observes that during real Mixtral-8x7B training
// (i) a handful of experts are overloaded at almost every iteration,
// (ii) the hot set drifts over the course of training, and (iii) different
// layers have different hot sets. Lacking the proprietary training traces,
// this package substitutes a calibrated synthetic process with the same
// three properties: each layer carries a vector of expert-popularity logits
// that evolves as a mean-reverting AR(1) random walk with occasional
// hotspot jumps, and an auxiliary-loss weight compresses the logits toward
// uniform (the mechanism by which aux losses balance routing).
package trace

import (
	"fmt"
	"math"
	"math/rand"
)

// RoutingMatrix is R: R[i][j] = token assignments on device i routed to
// expert j for one MoE layer in one iteration.
type RoutingMatrix struct {
	N int // devices
	E int // experts
	R [][]int
}

// NewRoutingMatrix returns a zeroed N x E matrix.
func NewRoutingMatrix(n, e int) *RoutingMatrix {
	r := make([][]int, n)
	for i := range r {
		r[i] = make([]int, e)
	}
	return &RoutingMatrix{N: n, E: e, R: r}
}

// ExpertLoads returns the per-expert totals summed over devices
// (R.sum(axis=0) in the paper's algorithms).
func (m *RoutingMatrix) ExpertLoads() []float64 {
	loads := make([]float64, m.E)
	for i := 0; i < m.N; i++ {
		for j := 0; j < m.E; j++ {
			loads[j] += float64(m.R[i][j])
		}
	}
	return loads
}

// DeviceTotals returns per-device totals (assignments originating on each
// device).
func (m *RoutingMatrix) DeviceTotals() []int {
	out := make([]int, m.N)
	for i := 0; i < m.N; i++ {
		for j := 0; j < m.E; j++ {
			out[i] += m.R[i][j]
		}
	}
	return out
}

// Total returns the total number of assignments in the matrix.
func (m *RoutingMatrix) Total() int {
	t := 0
	for i := 0; i < m.N; i++ {
		for j := 0; j < m.E; j++ {
			t += m.R[i][j]
		}
	}
	return t
}

// Clone returns a deep copy.
func (m *RoutingMatrix) Clone() *RoutingMatrix {
	c := NewRoutingMatrix(m.N, m.E)
	for i := range m.R {
		copy(c.R[i], m.R[i])
	}
	return c
}

// Validate checks dimensions and non-negativity.
func (m *RoutingMatrix) Validate() error {
	if len(m.R) != m.N {
		return fmt.Errorf("trace: matrix has %d rows, want %d", len(m.R), m.N)
	}
	for i, row := range m.R {
		if len(row) != m.E {
			return fmt.Errorf("trace: row %d has %d cols, want %d", i, len(row), m.E)
		}
		for j, v := range row {
			if v < 0 {
				return fmt.Errorf("trace: negative count at (%d,%d)", i, j)
			}
		}
	}
	return nil
}

// GeneratorConfig parameterizes the synthetic routing process.
type GeneratorConfig struct {
	Devices         int
	Experts         int
	Layers          int
	TokensPerDevice int // S: tokens per device per micro-batch
	TopK            int // K: assignments per token

	// Skew is the stationary standard deviation of the popularity logits;
	// 0 yields perfectly balanced routing. Calibrated default (1.0) gives
	// max/mean expert-load ratios around 2-4x at aux weight 0, matching
	// Fig. 1(a).
	Skew float64

	// AuxLossWeight is the auxiliary load-balancing loss weight. The
	// effective logits are scaled by 1/(1 + AuxGain*w), so larger weights
	// compress routing toward uniform (GShard/Switch-style behaviour).
	AuxLossWeight float64

	// AuxGain converts an aux-loss weight into logit compression. The
	// default (5e3) makes w=1e-2 nearly uniform while w=1e-4 only mildly
	// rebalances — the regime studied in Fig. 2 and Fig. 9.
	AuxGain float64

	// Persistence is the AR(1) coefficient of the logit random walk in
	// (0,1); closer to 1 means hot experts stay hot longer. Default 0.98.
	Persistence float64

	// JumpProb is the per-layer, per-iteration probability of a hotspot
	// jump (one expert's logit is re-drawn), producing the abrupt shifts
	// visible in Fig. 1(a). Default 0.02; a negative value disables jumps
	// (the zero value means "default", so 0 cannot).
	JumpProb float64

	// DeviceNoise is the relative standard deviation of per-device
	// popularity perturbations (different devices hold different data so
	// their routing differs slightly). Default 0.10.
	DeviceNoise float64

	Seed int64
}

func (c *GeneratorConfig) withDefaults() GeneratorConfig {
	out := *c
	if out.AuxGain == 0 {
		out.AuxGain = 5e3
	}
	if out.Persistence == 0 {
		out.Persistence = 0.98
	}
	if out.JumpProb == 0 {
		out.JumpProb = 0.02
	} else if out.JumpProb < 0 {
		out.JumpProb = 0
	}
	if out.DeviceNoise == 0 {
		out.DeviceNoise = 0.10
	}
	if out.Skew == 0 {
		out.Skew = 1.0
	}
	return out
}

// Validate reports configuration errors.
func (c *GeneratorConfig) Validate() error {
	switch {
	case c.Devices <= 0 || c.Experts <= 0 || c.Layers <= 0:
		return fmt.Errorf("trace: non-positive dimensions (N=%d E=%d L=%d)", c.Devices, c.Experts, c.Layers)
	case c.TokensPerDevice <= 0:
		return fmt.Errorf("trace: non-positive tokens per device")
	case c.TopK <= 0 || c.TopK > c.Experts:
		return fmt.Errorf("trace: top-k %d out of range for %d experts", c.TopK, c.Experts)
	case c.Skew < 0:
		return fmt.Errorf("trace: negative skew")
	}
	return nil
}

// Generator produces one RoutingMatrix per layer per call to Step,
// advancing the underlying popularity process between iterations.
type Generator struct {
	cfg    GeneratorConfig
	rng    *rand.Rand
	logits [][]float64 // per layer, per expert
	iter   int
}

// NewGenerator builds a generator; the initial logits are drawn from the
// stationary distribution so the first iteration is already imbalanced.
func NewGenerator(cfg GeneratorConfig) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	full := cfg.withDefaults()
	g := &Generator{
		cfg: full,
		rng: rand.New(rand.NewSource(full.Seed)),
	}
	g.logits = make([][]float64, full.Layers)
	for l := range g.logits {
		g.logits[l] = make([]float64, full.Experts)
		for j := range g.logits[l] {
			g.logits[l][j] = g.rng.NormFloat64() * full.Skew
		}
	}
	return g, nil
}

// Config returns the (defaulted) generator configuration.
func (g *Generator) Config() GeneratorConfig { return g.cfg }

// Iteration returns the number of completed Step calls.
func (g *Generator) Iteration() int { return g.iter }

// Step advances one training iteration and returns the routing matrix for
// every layer.
func (g *Generator) Step() []*RoutingMatrix {
	out := make([]*RoutingMatrix, g.cfg.Layers)
	for l := 0; l < g.cfg.Layers; l++ {
		g.evolveLayer(l)
		out[l] = g.sampleLayer(l)
	}
	g.iter++
	return out
}

// evolveLayer applies the mean-reverting AR(1) update with hotspot jumps.
func (g *Generator) evolveLayer(l int) {
	rho := g.cfg.Persistence
	// Innovation variance chosen so the stationary std stays at Skew:
	// sigma^2 = Skew^2 * (1 - rho^2).
	sigma := g.cfg.Skew * math.Sqrt(1-rho*rho)
	for j := range g.logits[l] {
		g.logits[l][j] = rho*g.logits[l][j] + sigma*g.rng.NormFloat64()
	}
	if g.rng.Float64() < g.cfg.JumpProb {
		j := g.rng.Intn(g.cfg.Experts)
		g.logits[l][j] = g.rng.NormFloat64() * g.cfg.Skew * 1.5
	}
}

// ExpertProbabilities returns the current global routing distribution of a
// layer after aux-loss compression (mainly for inspection and tests).
func (g *Generator) ExpertProbabilities(layer int) []float64 {
	return softmax(g.compressed(layer))
}

func (g *Generator) compressed(layer int) []float64 {
	scale := 1.0 / (1.0 + g.cfg.AuxGain*g.cfg.AuxLossWeight)
	out := make([]float64, g.cfg.Experts)
	for j, v := range g.logits[layer] {
		out[j] = v * scale
	}
	return out
}

// sampleLayer converts the layer's popularity distribution into an integer
// routing matrix. Each device perturbs the global distribution slightly
// (different data shards), then assigns exactly TokensPerDevice*TopK
// assignments using largest-remainder rounding so row sums are exact.
func (g *Generator) sampleLayer(l int) *RoutingMatrix {
	m := NewRoutingMatrix(g.cfg.Devices, g.cfg.Experts)
	base := g.compressed(l)
	perDevice := g.cfg.TokensPerDevice * g.cfg.TopK
	for i := 0; i < g.cfg.Devices; i++ {
		logits := make([]float64, g.cfg.Experts)
		for j := range logits {
			logits[j] = base[j] + g.rng.NormFloat64()*g.cfg.DeviceNoise
		}
		p := softmax(logits)
		m.R[i] = apportion(p, perDevice)
	}
	return m
}

// apportion distributes total assignments across experts proportionally to
// p with exact total (largest-remainder method, deterministic).
func apportion(p []float64, total int) []int {
	n := len(p)
	out := make([]int, n)
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, n)
	assigned := 0
	for j, pj := range p {
		exact := pj * float64(total)
		out[j] = int(exact)
		assigned += out[j]
		rems[j] = rem{j, exact - float64(out[j])}
	}
	// Hand out the remainder to the largest fractional parts; stable
	// tie-break on index keeps the result deterministic.
	for assigned < total {
		best := -1
		for j := range rems {
			if best == -1 || rems[j].frac > rems[best].frac {
				best = j
			}
		}
		out[rems[best].idx]++
		rems[best].frac = -1
		assigned++
	}
	return out
}

func softmax(logits []float64) []float64 {
	maxL := math.Inf(-1)
	for _, v := range logits {
		if v > maxL {
			maxL = v
		}
	}
	out := make([]float64, len(logits))
	var sum float64
	for i, v := range logits {
		out[i] = math.Exp(v - maxL)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// Balanced returns a perfectly balanced routing matrix for the given shape
// (the "balanced" condition of Fig. 1(b)): every device splits its
// assignments evenly across experts, remainders round-robin by device so
// column sums stay even too.
func Balanced(devices, experts, tokensPerDevice, topK int) *RoutingMatrix {
	m := NewRoutingMatrix(devices, experts)
	perDevice := tokensPerDevice * topK
	for i := 0; i < devices; i++ {
		base := perDevice / experts
		rem := perDevice % experts
		for j := 0; j < experts; j++ {
			m.R[i][j] = base
			if (j+i)%experts < rem {
				m.R[i][j]++
			}
		}
	}
	return m
}
