package trace

import (
	"math/rand"
	"slices"
	"testing"
)

// FuzzDiffRoundTrip drives DiffInto/ApplyTo with arbitrary matrix pairs:
// applying next−prev onto prev must reproduce next cell for cell, the
// sparse expert deltas must match the dense column-sum difference, and the
// net token delta must equal the difference of the totals.
func FuzzDiffRoundTrip(f *testing.F) {
	f.Add(int64(1), 4, 8, 64)
	f.Add(int64(2), 1, 1, 0)
	f.Add(int64(3), 16, 3, 7)
	f.Fuzz(func(t *testing.T, seed int64, n, e, maxCell int) {
		if n <= 0 || e <= 0 || n > 64 || e > 128 || maxCell < 0 || maxCell > 1<<20 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		fill := func() *RoutingMatrix {
			m := NewRoutingMatrix(n, e)
			for i := 0; i < n; i++ {
				for j := 0; j < e; j++ {
					if maxCell > 0 && rng.Intn(3) > 0 {
						m.R[i][j] = rng.Intn(maxCell + 1)
					}
				}
			}
			return m
		}
		prev, next := fill(), fill()
		d, err := Diff(prev, next)
		if err != nil {
			t.Fatal(err)
		}
		got := prev.Clone()
		if err := d.ApplyTo(got); err != nil {
			t.Fatal(err)
		}
		for i := range got.R {
			if !slices.Equal(got.R[i], next.R[i]) {
				t.Fatalf("row %d: round trip diverged", i)
			}
		}
		pl, nl := prev.ExpertLoads(), next.ExpertLoads()
		dense := make([]int, e)
		ids, deltas := d.ExpertLoadDelta()
		if len(ids) != len(deltas) {
			t.Fatalf("expert delta slices disagree: %d ids, %d deltas", len(ids), len(deltas))
		}
		for k, j := range ids {
			dense[j] += deltas[k]
		}
		for j := 0; j < e; j++ {
			if want := int(nl[j] - pl[j]); dense[j] != want {
				t.Fatalf("expert %d: delta %d, want %d", j, dense[j], want)
			}
		}
		if want := next.Total() - prev.Total(); d.TotalDelta() != want {
			t.Fatalf("net delta %d, want %d", d.TotalDelta(), want)
		}
	})
}
