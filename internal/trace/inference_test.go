package trace

import (
	"reflect"
	"testing"
)

func requestCfg(par int, arrival ArrivalShape) RequestConfig {
	return RequestConfig{
		GeneratorConfig: GeneratorConfig{
			Devices: 8, Experts: 16, Layers: 4,
			TokensPerDevice: 64, TopK: 2,
			Parallelism: par, Seed: 7,
		},
		Arrival: arrival,
	}
}

// TestRequestBatchStructure: per layer and device, the realized routing
// row must sum to requests x TopK (every request dispatches exactly its
// K choices), the choice list must agree with the offsets, and each
// request's K experts must be distinct and in range.
func TestRequestBatchStructure(t *testing.T) {
	for _, arrival := range ArrivalShapes() {
		g, err := NewRequestGenerator(requestCfg(4, arrival))
		if err != nil {
			t.Fatal(err)
		}
		cfg := g.Config()
		for it := 0; it < 6; it++ {
			routing, batch := g.Step()
			if batch.TopK != cfg.TopK {
				t.Fatalf("%s: batch TopK %d, want %d", arrival, batch.TopK, cfg.TopK)
			}
			total := 0
			for dev, n := range batch.PerDevice {
				total += n
				if batch.Offsets[dev+1]-batch.Offsets[dev] != n {
					t.Fatalf("%s: device %d offsets span %d requests, PerDevice says %d",
						arrival, dev, batch.Offsets[dev+1]-batch.Offsets[dev], n)
				}
			}
			if batch.Requests() != total {
				t.Fatalf("%s: Requests() = %d, want %d", arrival, batch.Requests(), total)
			}
			for l, choices := range batch.Choices {
				if len(choices) != total*cfg.TopK {
					t.Fatalf("%s: layer %d has %d choices for %d requests x %d",
						arrival, l, len(choices), total, cfg.TopK)
				}
				for r := 0; r < total; r++ {
					seen := map[int32]bool{}
					for k := 0; k < cfg.TopK; k++ {
						c := choices[r*cfg.TopK+k]
						if c < 0 || int(c) >= cfg.Experts {
							t.Fatalf("%s: layer %d request %d chose expert %d of %d", arrival, l, r, c, cfg.Experts)
						}
						if seen[c] {
							t.Fatalf("%s: layer %d request %d repeats expert %d", arrival, l, r, c)
						}
						seen[c] = true
					}
				}
				for dev := 0; dev < cfg.Devices; dev++ {
					sum := 0
					for _, v := range routing[l].R[dev] {
						sum += v
					}
					if sum != batch.PerDevice[dev]*cfg.TopK {
						t.Fatalf("%s: layer %d device %d routes %d tokens for %d requests x %d",
							arrival, l, dev, sum, batch.PerDevice[dev], cfg.TopK)
					}
				}
			}
		}
	}
}

// TestArrivalShapesModulate: both shapes draw their request volume around
// the configured mean — the diurnal sine and the bursty state machine
// modulate it, so across a period the per-step totals must actually vary.
func TestArrivalShapesModulate(t *testing.T) {
	for _, arrival := range ArrivalShapes() {
		g, err := NewRequestGenerator(requestCfg(1, arrival))
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := int(^uint(0)>>1), 0
		for it := 0; it < ArrivalPeriod; it++ {
			_, batch := g.Step()
			n := batch.Requests()
			if n < lo {
				lo = n
			}
			if n > hi {
				hi = n
			}
		}
		if lo == hi {
			t.Errorf("%s: request volume pinned at %d across a full period", arrival, lo)
		}
		if lo <= 0 {
			t.Errorf("%s: a step served no requests", arrival)
		}
	}
}

func TestRequestGeneratorDeterminism(t *testing.T) {
	for _, arrival := range ArrivalShapes() {
		a, err := NewRequestGenerator(requestCfg(1, arrival))
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewRequestGenerator(requestCfg(8, arrival))
		if err != nil {
			t.Fatal(err)
		}
		for it := 0; it < 10; it++ {
			ra, ba := a.Step()
			rb, bb := b.Step()
			if !reflect.DeepEqual(ba, bb) {
				t.Fatalf("%s iter %d: batches differ", arrival, it)
			}
			if !reflect.DeepEqual(ra, rb) {
				t.Fatalf("%s iter %d: routing differs", arrival, it)
			}
		}
	}
}
