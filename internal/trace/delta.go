// Drift-delta view of the routing workload: the sparse difference between
// two consecutive routing matrices of one layer. The paper's core
// observation (and *Prediction Is All MoE Needs*) is that expert loads are
// mostly stationary between adjacent observation windows, so the set of
// changed (device, expert) cells — and the set of experts whose load moved
// at all — is far smaller than the dense E×N matrix. RoutingDelta is the
// first-class representation of that structure: the planner's DriftTracker
// consumes it to maintain per-expert accumulated drift in O(changed cells)
// instead of re-scanning the full matrix every epoch.
package trace

import (
	"fmt"

	"laermoe/internal/par"
)

// DeltaCell records one changed routing-matrix cell: device Device sent
// Diff more (or, negative, fewer) assignments to expert Expert than in the
// previous observation.
type DeltaCell struct {
	Device int
	Expert int
	Diff   int
}

// RoutingDelta is the sparse difference next − prev between two routing
// matrices of the same shape. Cells lists every changed cell in row-major
// order; the per-expert load deltas (column-sum differences) are exposed
// through ExpertLoadDelta. A RoutingDelta retains internal scratch sized to
// the matrix shape, so reusing one across DiffInto calls is allocation-free
// in steady state.
type RoutingDelta struct {
	N, E int
	// Cells holds the changed cells in row-major (device-major) order.
	Cells []DeltaCell

	// Sparse per-expert load deltas: expertIDs[k] changed its total load by
	// expertDelta[k]. Experts appear in order of first touch (row-major).
	expertIDs   []int
	expertDelta []int

	// touch[j] is 1+position of expert j in expertIDs while a diff is being
	// built, 0 otherwise; cleared (over the touched set only) after each
	// DiffInto so the slab stays reusable without an O(E) wipe.
	touch []int32
}

func (d *RoutingDelta) resize(n, e int) {
	d.N, d.E = n, e
	if cap(d.touch) < e {
		d.touch = make([]int32, e)
	}
	d.touch = d.touch[:e]
	d.Cells = d.Cells[:0]
	d.expertIDs = d.expertIDs[:0]
	d.expertDelta = d.expertDelta[:0]
}

// DiffInto computes next − prev into d (allocated when nil, otherwise
// reused) and returns it. The matrices must share a shape.
func DiffInto(prev, next *RoutingMatrix, d *RoutingDelta) (*RoutingDelta, error) {
	if prev.N != next.N || prev.E != next.E {
		return nil, fmt.Errorf("trace: diff shape mismatch (%dx%d vs %dx%d)", prev.N, prev.E, next.N, next.E)
	}
	if d == nil {
		d = &RoutingDelta{}
	}
	d.resize(next.N, next.E)
	for i := 0; i < next.N; i++ {
		prow, nrow := prev.R[i], next.R[i]
		for j, nv := range nrow {
			pv := prow[j]
			if nv == pv {
				continue
			}
			diff := nv - pv
			d.Cells = append(d.Cells, DeltaCell{Device: i, Expert: j, Diff: diff})
			if pos := d.touch[j]; pos == 0 {
				d.expertIDs = append(d.expertIDs, j)
				d.expertDelta = append(d.expertDelta, diff)
				d.touch[j] = int32(len(d.expertIDs))
			} else {
				d.expertDelta[pos-1] += diff
			}
		}
	}
	for _, j := range d.expertIDs {
		d.touch[j] = 0
	}
	return d, nil
}

// Diff is DiffInto allocating its result.
func Diff(prev, next *RoutingMatrix) (*RoutingDelta, error) {
	return DiffInto(prev, next, nil)
}

// Len returns the number of changed cells.
func (d *RoutingDelta) Len() int { return len(d.Cells) }

// ExpertLoadDelta returns the per-expert load deltas as parallel slices:
// experts[k] changed its column sum by deltas[k]. Experts appear in
// row-major first-touch order; entries whose contributions cancelled to a
// zero net delta are retained (the expert's cells still moved). The slices
// alias the delta's internals and are valid until the next DiffInto.
func (d *RoutingDelta) ExpertLoadDelta() (experts []int, deltas []int) {
	return d.expertIDs, d.expertDelta
}

// ApplyTo adds the delta to m in place; applying next−prev to (a copy of)
// prev reproduces next exactly.
func (d *RoutingDelta) ApplyTo(m *RoutingMatrix) error {
	if m.N != d.N || m.E != d.E {
		return fmt.Errorf("trace: apply shape mismatch (%dx%d delta vs %dx%d matrix)", d.N, d.E, m.N, m.E)
	}
	for _, c := range d.Cells {
		m.R[c.Device][c.Expert] += c.Diff
	}
	return nil
}

// TotalDelta returns the net change in total assignments (zero whenever
// both observations carry the same token budget).
func (d *RoutingDelta) TotalDelta() int {
	t := 0
	for _, dv := range d.expertDelta {
		t += dv
	}
	return t
}

// StepDeltaInto advances one training iteration like StepInto and
// additionally emits each layer's sparse delta against the generator's
// previous emission (the previous Step/StepInto/StepDeltaInto output; the
// very first call diffs against the zero matrix, i.e. the delta is dense).
// dst and deltas are grown/reused exactly like StepInto's destination; the
// generator retains an internal copy of every emitted matrix to diff
// against, so callers may hand in any buffers.
func (g *Generator) StepDeltaInto(dst []*RoutingMatrix, deltas []*RoutingDelta) ([]*RoutingMatrix, []*RoutingDelta) {
	L := g.cfg.Layers
	n, e := g.cfg.Devices, g.cfg.Experts
	if cap(deltas) < L {
		grown := make([]*RoutingDelta, L)
		copy(grown, deltas)
		deltas = grown
	}
	deltas = deltas[:L]
	if g.prev == nil {
		g.prev = make([]*RoutingMatrix, L)
	}
	for l := 0; l < L; l++ {
		if g.prev[l] == nil || g.prev[l].N != n || g.prev[l].E != e {
			g.prev[l] = NewRoutingMatrix(n, e)
		}
		if deltas[l] == nil {
			deltas[l] = &RoutingDelta{}
		}
	}
	dst = g.StepInto(dst)
	workers := par.Workers(g.cfg.Parallelism)
	diffLayer := func(l int) error {
		var err error
		if deltas[l], err = DiffInto(g.prev[l], dst[l], deltas[l]); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			copy(g.prev[l].R[i], dst[l].R[i])
		}
		return nil
	}
	if workers <= 1 {
		for l := 0; l < L; l++ {
			_ = diffLayer(l) // shapes match by construction
		}
	} else {
		_ = par.ForEach(workers, L, diffLayer)
	}
	return dst, deltas
}
