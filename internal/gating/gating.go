// Package gating implements the MoE gating network of Sec. 2: a linear
// router over token hidden states followed by top-k selection and softmax
// weighting, g(x) = Softmax(TopK(x·W_g)), plus the Switch-Transformer
// auxiliary load-balancing loss used in the paper's convergence studies.
//
// The trace package synthesizes routing matrices directly from popularity
// processes; this package provides the token-level front-end for users who
// want to drive the planner from actual gating decisions, and it grounds
// the aux-loss mechanics (the loss really is minimized by uniform routing).
package gating

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"laermoe/internal/trace"
)

// Router is a gating network for one MoE layer.
type Router struct {
	HiddenDim int
	Experts   int
	TopK      int
	// W is the gating weight W_g, [HiddenDim][Experts].
	W [][]float32
}

// NewRouter initializes a router with scaled Gaussian weights.
func NewRouter(hiddenDim, experts, topK int, seed int64) (*Router, error) {
	if hiddenDim <= 0 || experts <= 0 || topK <= 0 || topK > experts {
		return nil, fmt.Errorf("gating: invalid shape H=%d E=%d K=%d", hiddenDim, experts, topK)
	}
	rng := rand.New(rand.NewSource(seed))
	w := make([][]float32, hiddenDim)
	scale := float32(1 / math.Sqrt(float64(hiddenDim)))
	for i := range w {
		w[i] = make([]float32, experts)
		for j := range w[i] {
			w[i][j] = float32(rng.NormFloat64()) * scale
		}
	}
	return &Router{HiddenDim: hiddenDim, Experts: experts, TopK: topK, W: w}, nil
}

// Assignment is one token's routing decision.
type Assignment struct {
	Expert int
	Weight float64 // softmax weight over the selected experts
}

// Decision holds one token's top-k experts and the full softmax
// distribution (needed by the auxiliary loss).
type Decision struct {
	TopK  []Assignment
	Probs []float64 // softmax over all experts
}

// Route gates one token: logits = x·W_g, softmax over all experts, then
// top-k selection renormalized among the selected experts.
func (r *Router) Route(x []float32) (Decision, error) {
	if len(x) != r.HiddenDim {
		return Decision{}, fmt.Errorf("gating: token has %d dims, router expects %d", len(x), r.HiddenDim)
	}
	logits := make([]float64, r.Experts)
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		for j := 0; j < r.Experts; j++ {
			logits[j] += float64(xi) * float64(r.W[i][j])
		}
	}
	probs := softmax(logits)

	idx := make([]int, r.Experts)
	for j := range idx {
		idx[j] = j
	}
	sort.SliceStable(idx, func(a, b int) bool { return logits[idx[a]] > logits[idx[b]] })
	top := idx[:r.TopK]

	// Renormalize the softmax over the selected experts (Mixtral-style).
	var sum float64
	for _, j := range top {
		sum += probs[j]
	}
	d := Decision{Probs: probs}
	for _, j := range top {
		d.TopK = append(d.TopK, Assignment{Expert: j, Weight: probs[j] / sum})
	}
	return d, nil
}

// RouteBatch gates a batch of tokens and returns per-expert assignment
// counts plus the decisions.
func (r *Router) RouteBatch(tokens [][]float32) ([]int, []Decision, error) {
	counts := make([]int, r.Experts)
	decisions := make([]Decision, len(tokens))
	for t, x := range tokens {
		d, err := r.Route(x)
		if err != nil {
			return nil, nil, err
		}
		decisions[t] = d
		for _, a := range d.TopK {
			counts[a.Expert]++
		}
	}
	return counts, decisions, nil
}

// AuxLoss computes the Switch-Transformer load-balancing loss over a batch
// of decisions: E * Σ_j f_j * P_j, where f_j is the fraction of tokens
// whose top choice is expert j and P_j the mean router probability of
// expert j. Its minimum, 1.0, is achieved by perfectly uniform routing.
func AuxLoss(decisions []Decision, experts int) float64 {
	if len(decisions) == 0 {
		return 0
	}
	f := make([]float64, experts)
	p := make([]float64, experts)
	for _, d := range decisions {
		if len(d.TopK) > 0 {
			f[d.TopK[0].Expert]++
		}
		for j, pj := range d.Probs {
			p[j] += pj
		}
	}
	n := float64(len(decisions))
	loss := 0.0
	for j := 0; j < experts; j++ {
		loss += (f[j] / n) * (p[j] / n)
	}
	return loss * float64(experts)
}

// TokenBatch synthesizes a batch of token hidden states whose cluster
// structure produces imbalanced routing: tokens are drawn around a few
// archetype directions, so the router concentrates them on a few experts
// (the mechanism behind Fig. 1a's skew).
func TokenBatch(hiddenDim, tokens, archetypes int, concentration float64, seed int64) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float32, archetypes)
	for a := range centers {
		centers[a] = make([]float32, hiddenDim)
		for i := range centers[a] {
			centers[a][i] = float32(rng.NormFloat64())
		}
	}
	out := make([][]float32, tokens)
	for t := range out {
		c := centers[rng.Intn(archetypes)]
		x := make([]float32, hiddenDim)
		for i := range x {
			x[i] = float32(concentration)*c[i] + float32(rng.NormFloat64())
		}
		out[t] = x
	}
	return out
}

// RoutingMatrix gates one batch per device and assembles the planner's
// R[i][j] input, bridging this token-level front-end to the rest of the
// system.
func RoutingMatrix(r *Router, devices, tokensPerDevice, archetypes int, concentration float64, seed int64) (*trace.RoutingMatrix, error) {
	m := trace.NewRoutingMatrix(devices, r.Experts)
	for dev := 0; dev < devices; dev++ {
		batch := TokenBatch(r.HiddenDim, tokensPerDevice, archetypes, concentration, seed+int64(dev)*7919)
		counts, _, err := r.RouteBatch(batch)
		if err != nil {
			return nil, err
		}
		copy(m.R[dev], counts)
	}
	return m, nil
}

func softmax(logits []float64) []float64 {
	maxL := math.Inf(-1)
	for _, v := range logits {
		if v > maxL {
			maxL = v
		}
	}
	out := make([]float64, len(logits))
	var sum float64
	for i, v := range logits {
		out[i] = math.Exp(v - maxL)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}
