package gating

import (
	"math"
	"testing"

	"laermoe/internal/stats"
)

func TestRouteBasics(t *testing.T) {
	r, err := NewRouter(16, 8, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float32, 16)
	x[0] = 1
	d, err := r.Route(x)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.TopK) != 2 {
		t.Fatalf("selected %d experts, want 2", len(d.TopK))
	}
	var wsum, psum float64
	for _, a := range d.TopK {
		if a.Expert < 0 || a.Expert >= 8 {
			t.Fatalf("expert %d out of range", a.Expert)
		}
		wsum += a.Weight
	}
	for _, p := range d.Probs {
		if p < 0 {
			t.Fatal("negative probability")
		}
		psum += p
	}
	if math.Abs(wsum-1) > 1e-9 {
		t.Errorf("top-k weights sum to %g", wsum)
	}
	if math.Abs(psum-1) > 1e-9 {
		t.Errorf("probabilities sum to %g", psum)
	}
	// Top-1 must carry at least as much weight as top-2.
	if d.TopK[0].Weight < d.TopK[1].Weight {
		t.Error("top-k not sorted by probability")
	}
	if _, err := r.Route(x[:5]); err == nil {
		t.Error("wrong dimension accepted")
	}
}

func TestRouterValidation(t *testing.T) {
	cases := [][3]int{{0, 8, 2}, {16, 0, 2}, {16, 8, 0}, {16, 4, 5}}
	for i, c := range cases {
		if _, err := NewRouter(c[0], c[1], c[2], 1); err == nil {
			t.Errorf("case %d: invalid router accepted", i)
		}
	}
}

// TestClusteredTokensRouteImbalanced: archetype-concentrated tokens produce
// skewed expert loads (the Fig. 1a mechanism from actual gating), while
// diffuse tokens route much more evenly.
func TestClusteredTokensRouteImbalanced(t *testing.T) {
	r, err := NewRouter(32, 8, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	imbalanceAt := func(concentration float64) float64 {
		m, err := RoutingMatrix(r, 4, 512, 3, concentration, 11)
		if err != nil {
			t.Fatal(err)
		}
		return stats.Imbalance(m.ExpertLoads())
	}
	clustered := imbalanceAt(3.0)
	diffuse := imbalanceAt(0.0)
	if clustered <= diffuse {
		t.Errorf("clustered tokens (%.2f) not more imbalanced than diffuse (%.2f)", clustered, diffuse)
	}
	if clustered < 1.5 {
		t.Errorf("clustered imbalance %.2f too mild to exercise the planner", clustered)
	}
}

// TestAuxLossMinimizedByUniformRouting: the Switch loss is E*Σf_j*P_j with
// minimum 1.0 at uniform routing; concentrated routing scores higher.
func TestAuxLossMinimizedByUniformRouting(t *testing.T) {
	const e = 4
	uniform := make([]Decision, 400)
	for i := range uniform {
		probs := []float64{0.25, 0.25, 0.25, 0.25}
		uniform[i] = Decision{
			TopK:  []Assignment{{Expert: i % e, Weight: 1}},
			Probs: probs,
		}
	}
	if got := AuxLoss(uniform, e); math.Abs(got-1) > 1e-9 {
		t.Errorf("uniform aux loss = %g, want 1", got)
	}
	concentrated := make([]Decision, 400)
	for i := range concentrated {
		concentrated[i] = Decision{
			TopK:  []Assignment{{Expert: 0, Weight: 1}},
			Probs: []float64{0.97, 0.01, 0.01, 0.01},
		}
	}
	if got := AuxLoss(concentrated, e); got <= 1 {
		t.Errorf("concentrated aux loss = %g, want > 1", got)
	}
	if AuxLoss(nil, e) != 0 {
		t.Error("empty batch should score 0")
	}
}

func TestRouteBatchCounts(t *testing.T) {
	r, err := NewRouter(16, 4, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	tokens := TokenBatch(16, 100, 2, 1.0, 5)
	counts, decisions, err := r.RouteBatch(tokens)
	if err != nil {
		t.Fatal(err)
	}
	if len(decisions) != 100 {
		t.Fatalf("%d decisions, want 100", len(decisions))
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 200 { // 100 tokens x top-2
		t.Errorf("total assignments %d, want 200", total)
	}
}

func TestRoutingMatrixBridging(t *testing.T) {
	r, err := NewRouter(16, 8, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	m, err := RoutingMatrix(r, 4, 128, 2, 2.0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, tot := range m.DeviceTotals() {
		if tot != 256 {
			t.Errorf("device %d total %d, want 256", i, tot)
		}
	}
}
