package gating

import (
	"testing"

	"laermoe/internal/planner"
	"laermoe/internal/stats"
	"laermoe/internal/topology"
)

// TestGatingDrivesPlanner is the full front-to-back pipeline on real
// gating decisions: synthetic clustered tokens → softmax top-k router →
// routing matrix → Alg. 2 layout tuner → lite routing, ending with
// materially better device balance than static expert parallelism.
func TestGatingDrivesPlanner(t *testing.T) {
	topo := topology.New(2, 4)
	r, err := NewRouter(32, 8, 2, 21)
	if err != nil {
		t.Fatal(err)
	}
	m, err := RoutingMatrix(r, topo.N(), 1024, 3, 2.5, 17)
	if err != nil {
		t.Fatal(err)
	}

	static, err := planner.EPRouting(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	solver := planner.NewSolver(topo, 2, planner.CostParams{
		TokenBytes: 8192, ExpertFLOPsPerToken: 352e6, FLOPS: 140e12,
	}, planner.DefaultSolverOptions())
	sol, err := solver.Solve(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.Dispatch().Validate(m, sol.Layout); err != nil {
		t.Fatal(err)
	}

	toF := func(xs []int) []float64 {
		out := make([]float64, len(xs))
		for i, v := range xs {
			out[i] = float64(v)
		}
		return out
	}
	staticImb := stats.Imbalance(toF(static.ReceivedLoads()))
	plannedImb := stats.Imbalance(toF(sol.Dispatch().ReceivedLoads()))
	if plannedImb >= staticImb {
		t.Errorf("planner did not improve gated routing: %.3f -> %.3f", staticImb, plannedImb)
	}
	if staticImb < 1.3 {
		t.Errorf("gated workload too balanced (%.3f) to be a meaningful test", staticImb)
	}
}
