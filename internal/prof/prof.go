// Package prof wires the standard runtime/pprof profilers into the
// command line tools, so perf work on the simulator starts from
// `laer-exp -cpuprofile` / `make profile` instead of a hand-rolled
// harness.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath ("" disables) and returns a stop
// function that must run before process exit (safe to call either way).
func Start(cpuPath string) (func(), error) {
	if cpuPath == "" {
		return func() {}, nil
	}
	f, err := os.Create(cpuPath)
	if err != nil {
		return nil, fmt.Errorf("prof: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("prof: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeap dumps an up-to-date heap profile to path ("" disables).
func WriteHeap(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("prof: %w", err)
	}
	defer f.Close()
	runtime.GC() // settle allocations so the profile reflects live heap
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("prof: %w", err)
	}
	return nil
}
