// Package memory estimates per-device memory for each parallel paradigm
// and implements the capacity fitter that, as in the paper's Sec. 5.2,
// forces Megatron onto a larger attention TP degree (and smaller
// micro-batches) for the e8k2 models while the fully-sharded systems spend
// the saved model-state memory on larger micro-batches.
//
// Formulas follow the paper's memory analysis (Sec. 3.1): fully sharded
// paradigms hold Ψ_all/P of parameter, gradient and optimizer state plus an
// unsharded working set of Ψ_other + 2·C·Ψ_expert for the current layer and
// the prefetched next layer.
package memory

import (
	"fmt"

	"laermoe/internal/model"
	"laermoe/internal/topology"
)

// Mixed-precision training constants (bytes per parameter).
const (
	ParamBytes = 2  // bf16 parameters
	GradBytes  = 2  // bf16 gradients
	OptBytes   = 12 // fp32 master copy + Adam m and v

	// ActivationBytesPerTokenFactor x HiddenDim is the stored activation
	// footprint of one token in one transformer layer under selective
	// recomputation. Calibrated so the capacity fitter reproduces the
	// paper's observed configurations (TP=4 + 8K-token micro-batches for
	// Megatron on e8k2; TP=2 + 16K on e16k4; 16K for fully sharded
	// systems throughout).
	ActivationBytesPerTokenFactor = 16

	// OverheadFactor covers allocator fragmentation, comm buffers, CUDA
	// context and other fixed costs. Calibrated together with the
	// activation factor against the paper's observed configurations.
	OverheadFactor = 1.13
)

// Estimate is a per-device memory breakdown in bytes.
type Estimate struct {
	Params      int64
	Grads       int64
	Optimizer   int64
	Activations int64
}

// Total applies the overhead factor to the component sum.
func (e Estimate) Total() int64 {
	raw := e.Params + e.Grads + e.Optimizer + e.Activations
	return int64(float64(raw) * OverheadFactor)
}

// Fits reports whether the estimate fits the device capacity.
func (e Estimate) Fits(t *topology.Topology) bool {
	return e.Total() <= t.DeviceMemory
}

func (e Estimate) String() string {
	gb := func(b int64) float64 { return float64(b) / (1 << 30) }
	return fmt.Sprintf("params %.1f GiB, grads %.1f GiB, optimizer %.1f GiB, activations %.1f GiB, total %.1f GiB",
		gb(e.Params), gb(e.Grads), gb(e.Optimizer), gb(e.Activations), gb(e.Total()))
}

func activationBytes(arch *model.Config, tokensPerDevice, tpDegree int) int64 {
	perTokenLayer := int64(ActivationBytesPerTokenFactor * arch.HiddenDim)
	total := perTokenLayer * int64(tokensPerDevice) * int64(arch.Layers)
	if tpDegree > 1 {
		total /= int64(tpDegree)
	}
	return total
}

// FullySharded estimates the footprint of FSEP (and of FSDP+EP, which is
// fully sharded too): Ψ_all/N of each model state plus the unsharded
// working set Ψ_other + 2·C·Ψ_expert for parameters and gradients.
func FullySharded(arch *model.Config, topo *topology.Topology, tokensPerDevice int) Estimate {
	n := int64(topo.N())
	all := arch.TotalParams()
	working := arch.NonExpertLayerParams() + 2*int64(arch.ExpertCapacity)*arch.ExpertParams()
	return Estimate{
		Params:      all/n*ParamBytes + working*ParamBytes,
		Grads:       all/n*GradBytes + working*GradBytes,
		Optimizer:   all / n * OptBytes,
		Activations: activationBytes(arch, tokensPerDevice, 1),
	}
}

// Megatron estimates the footprint of a Megatron-style configuration:
// attention/non-expert parameters TP-sharded and replicated across data
// parallel ranks, experts distributed by EP (C experts resident per
// device), gradients matching parameters, and a ZeRO-1 distributed
// optimizer sharded across the data-parallel dimension.
func Megatron(arch *model.Config, topo *topology.Topology, tpDegree, tokensPerDevice int) Estimate {
	n := int64(topo.N())
	dp := n / int64(tpDegree)
	nonExpert := int64(arch.Layers)*arch.NonExpertLayerParams() + arch.EmbeddingParams()
	nonExpertShard := nonExpert / int64(tpDegree)
	expertResident := int64(arch.ExpertCapacity) * arch.ExpertParams() * int64(arch.Layers)
	expertDP := n / int64(arch.Experts/arch.ExpertCapacity) // replicas of each expert
	return Estimate{
		Params:      (nonExpertShard + expertResident) * ParamBytes,
		Grads:       (nonExpertShard + expertResident) * GradBytes,
		Optimizer:   nonExpertShard/dp*OptBytes + expertResident/expertDP*OptBytes,
		Activations: activationBytes(arch, tokensPerDevice, tpDegree),
	}
}

// Plan is the outcome of the capacity fitter for one system.
type Plan struct {
	TPDegree        int
	TokensPerDevice int // micro-batch tokens per device (per TP rank for Megatron)
	Estimate        Estimate
}

// candidate micro-batch sizes in preference order (largest first), in
// tokens per device. 16K is the size at which Eq. 1's overlap condition
// holds comfortably; 8K is one 8K-context sequence.
var microBatchCandidates = []int{16384, 8192}

// TPCandidates are the attention tensor-parallel degrees considered.
var TPCandidates = []int{1, 2, 4, 8}

// FitFullySharded picks the largest micro-batch that fits for a fully
// sharded system (TP is always 1).
func FitFullySharded(arch *model.Config, topo *topology.Topology) (Plan, error) {
	for _, mb := range microBatchCandidates {
		est := FullySharded(arch, topo, mb)
		if est.Fits(topo) {
			return Plan{TPDegree: 1, TokensPerDevice: mb, Estimate: est}, nil
		}
	}
	return Plan{}, fmt.Errorf("memory: %s does not fit on %s even at the smallest micro-batch", arch.Name, topo)
}

// FitMegatron picks, in order of preference, the largest micro-batch and
// then the smallest TP degree that fits device memory — larger
// micro-batches improve efficiency more than avoiding TP does, matching
// how the paper tuned Megatron "to its optimal parallel strategy".
func FitMegatron(arch *model.Config, topo *topology.Topology) (Plan, error) {
	for _, mb := range microBatchCandidates {
		for _, tp := range TPCandidates {
			if tp > topo.DevicesPerNode || topo.N()%tp != 0 {
				continue
			}
			est := Megatron(arch, topo, tp, mb)
			if est.Fits(topo) {
				return Plan{TPDegree: tp, TokensPerDevice: mb, Estimate: est}, nil
			}
		}
	}
	return Plan{}, fmt.Errorf("memory: Megatron cannot fit %s on %s", arch.Name, topo)
}
