package memory

import (
	"testing"

	"laermoe/internal/model"
	"laermoe/internal/topology"
)

// TestFitMegatronReproducesPaperConfigs checks the Sec. 5.2 narrative: on
// the 32xA100 cluster the e8k2 models force Megatron onto a large
// attention TP degree, while the e16k4 models allow a smaller one.
func TestFitMegatronReproducesPaperConfigs(t *testing.T) {
	topo := topology.Default()
	e8, err := FitMegatron(model.Mixtral8x7B, topo)
	if err != nil {
		t.Fatalf("e8k2: %v", err)
	}
	e16, err := FitMegatron(model.Mixtral8x7BE16, topo)
	if err != nil {
		t.Fatalf("e16k4: %v", err)
	}
	if e8.TPDegree != 4 {
		t.Errorf("e8k2 Megatron TP = %d, want 4 (memory-forced)", e8.TPDegree)
	}
	if e16.TPDegree != 2 {
		t.Errorf("e16k4 Megatron TP = %d, want 2 (smaller model allows smaller TP)", e16.TPDegree)
	}
	if e16.TPDegree >= e8.TPDegree {
		t.Error("e16k4 should allow smaller TP than e8k2")
	}
}

// TestFullyShardedUsesLargeMicroBatch: the FSDP/FSEP systems spend the
// saved model-state memory on 16K-token micro-batches (above the Eq. 1
// overlap threshold), for every evaluated model.
func TestFullyShardedUsesLargeMicroBatch(t *testing.T) {
	topo := topology.Default()
	for _, arch := range model.All() {
		plan, err := FitFullySharded(arch, topo)
		if err != nil {
			t.Fatalf("%s: %v", arch.Name, err)
		}
		if plan.TPDegree != 1 {
			t.Errorf("%s: fully sharded TP = %d, want 1", arch.Name, plan.TPDegree)
		}
		if plan.TokensPerDevice != 16384 {
			t.Errorf("%s: micro-batch %d tokens, want 16384", arch.Name, plan.TokensPerDevice)
		}
	}
}

func TestFullyShardedUsesLessStateThanMegatron(t *testing.T) {
	topo := topology.Default()
	arch := model.Mixtral8x7B
	fs := FullySharded(arch, topo, 8192)
	mg := Megatron(arch, topo, 4, 8192)
	fsState := fs.Params + fs.Grads + fs.Optimizer
	mgState := mg.Params + mg.Grads + mg.Optimizer
	if fsState >= mgState {
		t.Errorf("fully sharded model state (%d) should be below Megatron's (%d)", fsState, mgState)
	}
}

func TestActivationsScaleWithTokensAndTP(t *testing.T) {
	topo := topology.Default()
	arch := model.Mixtral8x7B
	small := Megatron(arch, topo, 1, 8192)
	big := Megatron(arch, topo, 1, 16384)
	if big.Activations != 2*small.Activations {
		t.Errorf("activations not linear in tokens: %d vs %d", big.Activations, small.Activations)
	}
	tp2 := Megatron(arch, topo, 2, 8192)
	if tp2.Activations*2 != small.Activations {
		t.Errorf("activations not divided by TP: %d vs %d", tp2.Activations, small.Activations)
	}
}

func TestEstimateTotalIncludesOverhead(t *testing.T) {
	e := Estimate{Params: 100, Grads: 100, Optimizer: 100, Activations: 100}
	if got := e.Total(); got != 451 {
		t.Errorf("Total = %d, want 451 (13%% overhead)", got)
	}
}

func TestFitFailsOnTinyDevice(t *testing.T) {
	topo := topology.Default()
	topo.DeviceMemory = 1 << 30 // 1 GiB
	if _, err := FitFullySharded(model.Mixtral8x7B, topo); err == nil {
		t.Error("fit should fail on 1 GiB devices")
	}
	if _, err := FitMegatron(model.Mixtral8x7B, topo); err == nil {
		t.Error("Megatron fit should fail on 1 GiB devices")
	}
}

func TestEstimateString(t *testing.T) {
	s := FullySharded(model.Mixtral8x7B, topology.Default(), 8192).String()
	if s == "" {
		t.Error("empty estimate string")
	}
}
