package moe

import (
	"math"
	"math/rand"
	"testing"

	"laermoe/internal/fsep"
)

func randTokens(n, dim int, seed int64) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float32, n)
	for t := range out {
		x := make([]float32, dim)
		for i := range x {
			x[i] = float32(rng.NormFloat64())
		}
		out[t] = x
	}
	return out
}

func TestForwardShapeAndDeterminism(t *testing.T) {
	e := NewSwiGLUExpert(16, 32, 1)
	x := randTokens(1, 16, 2)[0]
	y1, act, err := e.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if len(y1) != 16 || len(act.H) != 32 {
		t.Fatalf("output dims %d/%d", len(y1), len(act.H))
	}
	y2, _, err := e.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatal("forward is not deterministic")
		}
	}
	if _, _, err := e.Forward(x[:3]); err == nil {
		t.Error("wrong input dimension accepted")
	}
}

// TestFSEPNumericalEquivalence substantiates the paper's Sec. 3.1 claim:
// experts restored through FSEP's shard→unshard compute *bit-identical*
// outputs to the originals.
func TestFSEPNumericalEquivalence(t *testing.T) {
	const hidden, inter, experts, devices = 24, 48, 4, 6
	originals := make([]*SwiGLUExpert, experts)
	params := make([]fsep.Expert, experts)
	for j := range originals {
		originals[j] = NewSwiGLUExpert(hidden, inter, int64(j+1))
		params[j] = originals[j].Params()
	}
	sharded, err := fsep.Shard(params, devices)
	if err != nil {
		t.Fatal(err)
	}
	restoredParams, err := sharded.Unshard([]int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	tokens := randTokens(8, hidden, 9)
	for j := 0; j < experts; j++ {
		restored, err := FromParams(restoredParams[j], hidden, inter)
		if err != nil {
			t.Fatal(err)
		}
		for _, x := range tokens {
			want, _, err := originals[j].Forward(x)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := restored.Forward(x)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("expert %d output[%d]: %g != %g (not bit-identical)", j, i, got[i], want[i])
				}
			}
		}
	}
}

// TestGradientsMatchFiniteDifferences validates Backward against numeric
// differentiation of a scalar loss L = Σ y.
func TestGradientsMatchFiniteDifferences(t *testing.T) {
	const hidden, inter = 6, 10
	e := NewSwiGLUExpert(hidden, inter, 3)
	x := randTokens(1, hidden, 4)[0]
	_, act, err := e.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	dy := make([]float32, hidden)
	for i := range dy {
		dy[i] = 1 // dL/dy for L = Σ y
	}
	g, err := e.Backward(act, dy)
	if err != nil {
		t.Fatal(err)
	}

	loss := func() float64 {
		y, _, err := e.Forward(x)
		if err != nil {
			t.Fatal(err)
		}
		s := 0.0
		for _, v := range y {
			s += float64(v)
		}
		return s
	}
	const eps = 1e-3
	checkTensor := func(name string, w, grad fsep.Tensor) {
		// Spot-check a handful of entries.
		for _, idx := range []int{0, 1, len(w.Data) / 2, len(w.Data) - 1} {
			orig := w.Data[idx]
			w.Data[idx] = orig + eps
			up := loss()
			w.Data[idx] = orig - eps
			down := loss()
			w.Data[idx] = orig
			numeric := (up - down) / (2 * eps)
			analytic := float64(grad.Data[idx])
			if math.Abs(numeric-analytic) > 1e-2*(1+math.Abs(numeric)) {
				t.Errorf("%s grad[%d]: analytic %g vs numeric %g", name, idx, analytic, numeric)
			}
		}
	}
	checkTensor("gate", e.Gate, g.Gate)
	checkTensor("up", e.Up, g.Up)
	checkTensor("down", e.Down, g.Down)

	// Input gradient.
	for _, idx := range []int{0, hidden - 1} {
		orig := x[idx]
		x[idx] = orig + eps
		up := loss()
		x[idx] = orig - eps
		down := loss()
		x[idx] = orig
		numeric := (up - down) / (2 * eps)
		if math.Abs(numeric-float64(g.DX[idx])) > 1e-2*(1+math.Abs(numeric)) {
			t.Errorf("dx[%d]: analytic %g vs numeric %g", idx, g.DX[idx], numeric)
		}
	}
}

// TestGradientReshardRoundTrip: token gradients computed on restored
// replicas, resharded through FSEP and re-assembled equal the sum of the
// per-replica gradients (the Fig. 4b path with real gradients).
func TestGradientReshardRoundTrip(t *testing.T) {
	const hidden, inter, devices = 8, 12, 4
	expert := NewSwiGLUExpert(hidden, inter, 5)
	sharded, err := fsep.Shard([]fsep.Expert{expert.Params()}, devices)
	if err != nil {
		t.Fatal(err)
	}
	// Two devices each restore the expert and compute a gradient on their
	// own token.
	tokens := randTokens(2, hidden, 6)
	dy := make([]float32, hidden)
	for i := range dy {
		dy[i] = 0.5
	}
	var contribs []fsep.GradContribution
	want := make([]float64, sharded.Meta.FlatLen)
	for dev, x := range tokens {
		restored, err := sharded.Unshard([]int{0})
		if err != nil {
			t.Fatal(err)
		}
		replica, err := FromParams(restored[0], hidden, inter)
		if err != nil {
			t.Fatal(err)
		}
		_, act, err := replica.Forward(x)
		if err != nil {
			t.Fatal(err)
		}
		g, err := replica.Backward(act, dy)
		if err != nil {
			t.Fatal(err)
		}
		flat := g.Flat()
		for i, v := range flat {
			want[i] += float64(v)
		}
		contribs = append(contribs, fsep.GradContribution{Device: dev, Expert: 0, Grad: flat})
	}
	chunks, err := sharded.Reshard(contribs)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]float64, 0, sharded.Meta.FlatLen)
	for d := 0; d < devices; d++ {
		for _, v := range chunks[d][0] {
			got = append(got, float64(v))
		}
	}
	got = got[:sharded.Meta.FlatLen]
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-5*(1+math.Abs(want[i])) {
			t.Fatalf("resharded grad[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestMoELayerMix(t *testing.T) {
	layer := &MoELayer{Experts: []*SwiGLUExpert{
		NewSwiGLUExpert(8, 16, 1),
		NewSwiGLUExpert(8, 16, 2),
	}}
	x := randTokens(1, 8, 3)[0]
	y, err := layer.Mix(x, []int{0, 1}, []float64{0.7, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	y0, _, _ := layer.Experts[0].Forward(x)
	y1, _, _ := layer.Experts[1].Forward(x)
	for i := range y {
		want := 0.7*float64(y0[i]) + 0.3*float64(y1[i])
		if math.Abs(float64(y[i])-want) > 1e-5 {
			t.Fatalf("mix[%d] = %g, want %g", i, y[i], want)
		}
	}
	if _, err := layer.Mix(x, []int{0}, []float64{0.5, 0.5}); err == nil {
		t.Error("mismatched selections/weights accepted")
	}
	if _, err := layer.Mix(x, []int{9}, []float64{1}); err == nil {
		t.Error("out-of-range expert accepted")
	}
}

func TestFromParamsValidation(t *testing.T) {
	e := NewSwiGLUExpert(8, 16, 1)
	if _, err := FromParams(e.Params(), 9, 16); err == nil {
		t.Error("shape mismatch accepted")
	}
	if _, err := FromParams(fsep.Expert{}, 8, 16); err == nil {
		t.Error("empty params accepted")
	}
}
