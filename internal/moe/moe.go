// Package moe implements the expert networks themselves: SwiGLU MLPs with
// forward and backward passes over real tensors. Combined with the FSEP
// data plane it substantiates the paper's Sec. 3.1 claim that FSEP
// "maintains numerical precision identical to FSDP": parameters restored
// through shard→unshard compute bit-identical outputs, and gradients
// produced locally, resharded and re-assembled match direct computation.
package moe

import (
	"fmt"
	"math"
	"math/rand"

	"laermoe/internal/fsep"
)

// SwiGLUExpert is one expert: y = W_down( silu(W_gate x) ⊙ (W_up x) ).
// Weights are stored row-major as [out][in].
type SwiGLUExpert struct {
	Hidden       int         // H
	Intermediate int         // H'
	Gate         fsep.Tensor // [H' x H]
	Up           fsep.Tensor // [H' x H]
	Down         fsep.Tensor // [H x H']
}

// NewSwiGLUExpert initializes an expert with scaled Gaussian weights.
func NewSwiGLUExpert(hidden, intermediate int, seed int64) *SwiGLUExpert {
	rng := rand.New(rand.NewSource(seed))
	initT := func(rows, cols int) fsep.Tensor {
		t := fsep.NewTensor(rows, cols)
		scale := float32(1 / math.Sqrt(float64(cols)))
		for i := range t.Data {
			t.Data[i] = float32(rng.NormFloat64()) * scale
		}
		return t
	}
	return &SwiGLUExpert{
		Hidden:       hidden,
		Intermediate: intermediate,
		Gate:         initT(intermediate, hidden),
		Up:           initT(intermediate, hidden),
		Down:         initT(hidden, intermediate),
	}
}

// Params exposes the expert's tensors in the canonical (gate, up, down)
// order used by the FSEP shard.
func (e *SwiGLUExpert) Params() fsep.Expert {
	return fsep.Expert{Tensors: []fsep.Tensor{e.Gate, e.Up, e.Down}}
}

// FromParams reconstructs an expert view over restored FSEP parameters.
func FromParams(p fsep.Expert, hidden, intermediate int) (*SwiGLUExpert, error) {
	if len(p.Tensors) != 3 {
		return nil, fmt.Errorf("moe: expert has %d tensors, want 3", len(p.Tensors))
	}
	g, u, d := p.Tensors[0], p.Tensors[1], p.Tensors[2]
	if g.Rows != intermediate || g.Cols != hidden || u.Rows != intermediate || u.Cols != hidden ||
		d.Rows != hidden || d.Cols != intermediate {
		return nil, fmt.Errorf("moe: tensor shapes do not match H=%d H'=%d", hidden, intermediate)
	}
	return &SwiGLUExpert{Hidden: hidden, Intermediate: intermediate, Gate: g, Up: u, Down: d}, nil
}

// silu is x * sigmoid(x).
func silu(x float32) float32 {
	return x * float32(1/(1+math.Exp(-float64(x))))
}

// siluGrad is d/dx silu(x).
func siluGrad(x float32) float32 {
	s := float32(1 / (1 + math.Exp(-float64(x))))
	return s * (1 + x*(1-s))
}

// matVec computes W·x for a row-major [rows x cols] tensor.
func matVec(w fsep.Tensor, x []float32) []float32 {
	out := make([]float32, w.Rows)
	for r := 0; r < w.Rows; r++ {
		row := w.Data[r*w.Cols : (r+1)*w.Cols]
		var acc float32
		for c, v := range row {
			acc += v * x[c]
		}
		out[r] = acc
	}
	return out
}

// matVecT computes Wᵀ·g for a row-major [rows x cols] tensor.
func matVecT(w fsep.Tensor, g []float32) []float32 {
	out := make([]float32, w.Cols)
	for r := 0; r < w.Rows; r++ {
		row := w.Data[r*w.Cols : (r+1)*w.Cols]
		gr := g[r]
		if gr == 0 {
			continue
		}
		for c, v := range row {
			out[c] += v * gr
		}
	}
	return out
}

// Activations caches the forward intermediates needed by Backward.
type Activations struct {
	X     []float32
	GateY []float32 // W_gate x
	UpY   []float32 // W_up x
	H     []float32 // silu(GateY) ⊙ UpY
}

// Forward computes the expert output for one token and returns the
// activations for the backward pass.
func (e *SwiGLUExpert) Forward(x []float32) ([]float32, *Activations, error) {
	if len(x) != e.Hidden {
		return nil, nil, fmt.Errorf("moe: token has %d dims, expert expects %d", len(x), e.Hidden)
	}
	gy := matVec(e.Gate, x)
	uy := matVec(e.Up, x)
	h := make([]float32, e.Intermediate)
	for i := range h {
		h[i] = silu(gy[i]) * uy[i]
	}
	y := matVec(e.Down, h)
	return y, &Activations{X: x, GateY: gy, UpY: uy, H: h}, nil
}

// Gradients holds parameter gradients in the canonical tensor order.
type Gradients struct {
	Gate fsep.Tensor
	Up   fsep.Tensor
	Down fsep.Tensor
	// DX is the gradient w.r.t. the input token.
	DX []float32
}

// Flat concatenates the gradients in shard order (gate, up, down), ready
// for fsep.Reshard.
func (g *Gradients) Flat() []float32 {
	out := make([]float32, 0, len(g.Gate.Data)+len(g.Up.Data)+len(g.Down.Data))
	out = append(out, g.Gate.Data...)
	out = append(out, g.Up.Data...)
	out = append(out, g.Down.Data...)
	return out
}

// Backward computes parameter and input gradients for one token given the
// output gradient dy.
func (e *SwiGLUExpert) Backward(act *Activations, dy []float32) (*Gradients, error) {
	if len(dy) != e.Hidden {
		return nil, fmt.Errorf("moe: output grad has %d dims, want %d", len(dy), e.Hidden)
	}
	g := &Gradients{
		Gate: fsep.NewTensor(e.Intermediate, e.Hidden),
		Up:   fsep.NewTensor(e.Intermediate, e.Hidden),
		Down: fsep.NewTensor(e.Hidden, e.Intermediate),
	}
	// dDown = dy ⊗ h ; dh = Downᵀ dy.
	for r := 0; r < e.Hidden; r++ {
		row := g.Down.Data[r*e.Intermediate : (r+1)*e.Intermediate]
		for c := 0; c < e.Intermediate; c++ {
			row[c] = dy[r] * act.H[c]
		}
	}
	dh := matVecT(e.Down, dy)
	// h = silu(gy) ⊙ uy.
	dgy := make([]float32, e.Intermediate)
	duy := make([]float32, e.Intermediate)
	for i := 0; i < e.Intermediate; i++ {
		dgy[i] = dh[i] * act.UpY[i] * siluGrad(act.GateY[i])
		duy[i] = dh[i] * silu(act.GateY[i])
	}
	for r := 0; r < e.Intermediate; r++ {
		gRow := g.Gate.Data[r*e.Hidden : (r+1)*e.Hidden]
		uRow := g.Up.Data[r*e.Hidden : (r+1)*e.Hidden]
		for c := 0; c < e.Hidden; c++ {
			gRow[c] = dgy[r] * act.X[c]
			uRow[c] = duy[r] * act.X[c]
		}
	}
	dx := matVecT(e.Gate, dgy)
	dxUp := matVecT(e.Up, duy)
	g.DX = make([]float32, e.Hidden)
	for i := range g.DX {
		g.DX[i] = dx[i] + dxUp[i]
	}
	return g, nil
}

// MoELayer combines experts with top-k mixing: y = Σ w_k * f_k(x).
type MoELayer struct {
	Experts []*SwiGLUExpert
}

// Mix computes the weighted combination of the selected experts' outputs
// for one token.
func (m *MoELayer) Mix(x []float32, selections []int, weights []float64) ([]float32, error) {
	if len(selections) != len(weights) {
		return nil, fmt.Errorf("moe: %d selections but %d weights", len(selections), len(weights))
	}
	if len(m.Experts) == 0 {
		return nil, fmt.Errorf("moe: no experts")
	}
	out := make([]float32, m.Experts[0].Hidden)
	for k, j := range selections {
		if j < 0 || j >= len(m.Experts) {
			return nil, fmt.Errorf("moe: expert %d out of range", j)
		}
		y, _, err := m.Experts[j].Forward(x)
		if err != nil {
			return nil, err
		}
		w := float32(weights[k])
		for i := range out {
			out[i] += w * y[i]
		}
	}
	return out, nil
}
