package viz

import (
	"bytes"
	"strings"
	"testing"
)

func TestBarScaling(t *testing.T) {
	full := Bar("x", 10, 10, 20, "s")
	half := Bar("x", 5, 10, 20, "s")
	if strings.Count(full, "█") != 20 {
		t.Errorf("full bar has %d cells, want 20", strings.Count(full, "█"))
	}
	if strings.Count(half, "█") != 10 {
		t.Errorf("half bar has %d cells, want 10", strings.Count(half, "█"))
	}
	if got := Bar("x", 20, 10, 20, ""); strings.Count(got, "█") != 20 {
		t.Error("overflow bar should clamp to width")
	}
	if got := Bar("x", 1, 0, 20, ""); strings.Count(got, "█") != 0 {
		t.Error("zero max should render no cells")
	}
}

func TestBarChart(t *testing.T) {
	var buf bytes.Buffer
	BarChart(&buf, []string{"a", "b"}, []float64{1, 2}, 10, "u")
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("chart has %d lines, want 2", len(lines))
	}
	if !strings.Contains(lines[0], "a") || !strings.Contains(lines[1], "b") {
		t.Error("labels missing")
	}
}

func TestStackedBar(t *testing.T) {
	s := StackedBar("mix", []float64{1, 1, 2}, []rune("abc"), 8)
	if strings.Count(s, "a") != 2 || strings.Count(s, "b") != 2 || strings.Count(s, "c") != 4 {
		t.Errorf("segment widths wrong: %q", s)
	}
	if empty := StackedBar("none", []float64{0, 0}, nil, 8); !strings.HasPrefix(empty, "none") {
		t.Errorf("empty stacked bar = %q", empty)
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Fatalf("sparkline has %d runes, want 4", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[3] != '█' {
		t.Errorf("sparkline endpoints wrong: %q", s)
	}
	if Sparkline(nil) != "" {
		t.Error("empty series should render empty")
	}
	flat := Sparkline([]float64{5, 5, 5})
	for _, r := range flat {
		if r != '▁' {
			t.Errorf("flat series should render minimum blocks: %q", flat)
		}
	}
}

func TestTable(t *testing.T) {
	var buf bytes.Buffer
	Table(&buf, [][]string{{"name", "value"}, {"alpha", "1"}, {"b", "22"}})
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header + separator + 2 rows
		t.Fatalf("table has %d lines, want 4", len(lines))
	}
	if !strings.HasPrefix(lines[1], "-----") {
		t.Errorf("separator missing: %q", lines[1])
	}
	// Columns aligned: "value" column starts at same offset in all rows.
	idx := strings.Index(lines[0], "value")
	if strings.Index(lines[2], "1") != idx {
		t.Errorf("columns misaligned:\n%s", out)
	}
	Table(&buf, nil) // must not panic
}
