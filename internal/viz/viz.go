// Package viz renders the small ASCII visualisations used by the command
// line tools and examples: horizontal bar charts, sparklines and aligned
// tables.
package viz

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Bar renders one labelled horizontal bar scaled so that maxValue fills
// width cells.
func Bar(label string, value, maxValue float64, width int, unit string) string {
	if width <= 0 {
		width = 40
	}
	n := 0
	if maxValue > 0 {
		n = int(math.Round(value / maxValue * float64(width)))
	}
	if n > width {
		n = width
	}
	if n < 0 {
		n = 0
	}
	return fmt.Sprintf("%-22s %-*s %8.3g%s", label, width, strings.Repeat("█", n), value, unit)
}

// BarChart writes one bar per (label, value) pair, auto-scaled to the
// largest value.
func BarChart(w io.Writer, labels []string, values []float64, width int, unit string) {
	maxV := 0.0
	for _, v := range values {
		if v > maxV {
			maxV = v
		}
	}
	for i, label := range labels {
		fmt.Fprintln(w, Bar(label, values[i], maxV, width, unit))
	}
}

// StackedBar renders segment shares of a whole as a single bar, with one
// rune per segment class.
func StackedBar(label string, segments []float64, runes []rune, width int) string {
	total := 0.0
	for _, s := range segments {
		total += s
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s ", label)
	if total <= 0 {
		return b.String()
	}
	used := 0
	for i, s := range segments {
		n := int(math.Round(s / total * float64(width)))
		if i == len(segments)-1 {
			n = width - used
		}
		if n < 0 {
			n = 0
		}
		used += n
		r := '█'
		if i < len(runes) {
			r = runes[i]
		}
		b.WriteString(strings.Repeat(string(r), n))
	}
	return b.String()
}

// sparkRunes are the eight block heights of a sparkline.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders a series as a compact one-line chart.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkRunes) {
			idx = len(sparkRunes) - 1
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// Table writes rows with aligned columns; the first row is treated as the
// header and underlined.
func Table(w io.Writer, rows [][]string) {
	if len(rows) == 0 {
		return
	}
	widths := make([]int, 0)
	for _, row := range rows {
		for c, cell := range row {
			if c >= len(widths) {
				widths = append(widths, 0)
			}
			if len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	writeRow := func(row []string) {
		var b strings.Builder
		for c, cell := range row {
			if c > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[c], cell)
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	writeRow(rows[0])
	var sep []string
	for _, width := range widths[:len(rows[0])] {
		sep = append(sep, strings.Repeat("-", width))
	}
	writeRow(sep)
	for _, row := range rows[1:] {
		writeRow(row)
	}
}
