// Package stats provides the small statistical utilities used across the
// simulator and the experiment harness: summaries, imbalance measures and
// exponential moving averages.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	mu := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - mu
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It copies xs and leaves it unchanged.
// A NaN anywhere in xs yields NaN: NaN compares false against everything,
// so it would silently scramble the sort order and return an arbitrary
// in-range value instead of signalling the poisoned input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	for _, x := range xs {
		if math.IsNaN(x) {
			return math.NaN()
		}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Imbalance returns max/mean of xs — the load-imbalance ratio used
// throughout the paper (1.0 = perfectly balanced). Returns 1 when the mean
// is zero or the slice is empty.
func Imbalance(xs []float64) float64 {
	mu := Mean(xs)
	if mu == 0 {
		return 1
	}
	return Max(xs) / mu
}

// Gini returns the Gini coefficient of xs in [0,1); 0 = perfectly equal.
// The coefficient is only defined for non-negative inputs, and a NaN would
// scramble the sort ordering it depends on, so both cases return NaN
// explicitly instead of a silently wrong in-range value.
func Gini(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	for _, x := range xs {
		if math.IsNaN(x) || x < 0 {
			return math.NaN()
		}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var cum, total float64
	for i, x := range sorted {
		cum += x * float64(i+1)
		total += x
	}
	if total == 0 {
		return 0
	}
	return (2*cum)/(float64(n)*total) - float64(n+1)/float64(n)
}

// EMA is an exponential moving average with smoothing factor alpha in
// (0,1]; larger alpha weights recent observations more.
type EMA struct {
	Alpha float64
	value float64
	init  bool
}

// NewEMA returns an EMA with the given smoothing factor. Alpha must lie in
// (0,1]: alpha <= 0 freezes the average (or oscillates for negative
// values) and alpha > 1 diverges, so anything outside the interval is a
// configuration error, not an average.
func NewEMA(alpha float64) (*EMA, error) {
	if err := validAlpha(alpha); err != nil {
		return nil, err
	}
	return &EMA{Alpha: alpha}, nil
}

func validAlpha(alpha float64) error {
	if math.IsNaN(alpha) || alpha <= 0 || alpha > 1 {
		return fmt.Errorf("stats: EMA smoothing factor %g outside (0,1]", alpha)
	}
	return nil
}

// Observe folds x into the average and returns the updated value.
func (e *EMA) Observe(x float64) float64 {
	if !e.init {
		e.value = x
		e.init = true
		return x
	}
	e.value = e.Alpha*x + (1-e.Alpha)*e.value
	return e.value
}

// Value returns the current average (0 before any observation).
func (e *EMA) Value() float64 { return e.value }

// Initialized reports whether at least one observation has been folded in.
func (e *EMA) Initialized() bool { return e.init }

// VectorEMA maintains an element-wise EMA over fixed-length vectors, used
// to smooth historical routing loads for the asynchronous planner.
type VectorEMA struct {
	Alpha  float64
	values []float64
	init   bool
}

// NewVectorEMA returns a vector EMA of the given length. Alpha must lie in
// (0,1], as for NewEMA.
func NewVectorEMA(alpha float64, n int) (*VectorEMA, error) {
	if err := validAlpha(alpha); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("stats: VectorEMA length %d must be positive", n)
	}
	return &VectorEMA{Alpha: alpha, values: make([]float64, n)}, nil
}

// Observe folds xs in element-wise. It panics if len(xs) differs from the
// configured length.
func (e *VectorEMA) Observe(xs []float64) {
	if len(xs) != len(e.values) {
		panic("stats: VectorEMA length mismatch")
	}
	if !e.init {
		copy(e.values, xs)
		e.init = true
		return
	}
	for i, x := range xs {
		e.values[i] = e.Alpha*x + (1-e.Alpha)*e.values[i]
	}
}

// Values returns a copy of the current averages.
func (e *VectorEMA) Values() []float64 {
	return append([]float64(nil), e.values...)
}

// ValuesInto copies the current averages into dst without allocating. It
// panics if len(dst) differs from the configured length.
func (e *VectorEMA) ValuesInto(dst []float64) {
	if len(dst) != len(e.values) {
		panic("stats: VectorEMA length mismatch")
	}
	copy(dst, e.values)
}

// Initialized reports whether at least one vector has been folded in.
func (e *VectorEMA) Initialized() bool { return e.init }

// RestoreValues overwrites the averages with a previously exported vector
// and marks the EMA initialized — the state-restore hook behind journal
// compaction (a restored average must continue the series exactly where
// the exported one stopped). It panics if len(xs) differs from the
// configured length.
func (e *VectorEMA) RestoreValues(xs []float64) {
	if len(xs) != len(e.values) {
		panic("stats: VectorEMA length mismatch")
	}
	copy(e.values, xs)
	e.init = true
}

// Len returns the configured vector length.
func (e *VectorEMA) Len() int { return len(e.values) }
