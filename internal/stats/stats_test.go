package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanSumMaxMin(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if got := Mean(xs); !almost(got, 2.8, 1e-12) {
		t.Errorf("Mean = %g, want 2.8", got)
	}
	if got := Sum(xs); got != 14 {
		t.Errorf("Sum = %g, want 14", got)
	}
	if got := Max(xs); got != 5 {
		t.Errorf("Max = %g, want 5", got)
	}
	if got := Min(xs); got != 1 {
		t.Errorf("Min = %g, want 1", got)
	}
	if Mean(nil) != 0 || Max(nil) != 0 || Min(nil) != 0 {
		t.Error("empty-slice summaries should be 0")
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 2, 2}); got != 0 {
		t.Errorf("StdDev of constants = %g, want 0", got)
	}
	// Population std of {1,3} is 1.
	if got := StdDev([]float64{1, 3}); !almost(got, 1, 1e-12) {
		t.Errorf("StdDev = %g, want 1", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 40}, {50, 25}, {25, 17.5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want, 1e-9) {
			t.Errorf("Percentile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	// Input must not be mutated.
	if xs[0] != 10 || xs[3] != 40 {
		t.Error("Percentile mutated its input")
	}
}

// NaN compares false against everything, so before the fix a NaN in the
// input scrambled sort.Float64s ordering and Percentile/Gini returned an
// arbitrary in-range value. Both must propagate NaN explicitly.
func TestPercentileNaN(t *testing.T) {
	if got := Percentile([]float64{1, math.NaN(), 3}, 50); !math.IsNaN(got) {
		t.Errorf("Percentile with NaN input = %g, want NaN", got)
	}
	if got := Percentile([]float64{math.NaN()}, 0); !math.IsNaN(got) {
		t.Errorf("Percentile of {NaN} = %g, want NaN", got)
	}
}

func TestGiniNaNAndNegative(t *testing.T) {
	if got := Gini([]float64{1, math.NaN(), 3}); !math.IsNaN(got) {
		t.Errorf("Gini with NaN input = %g, want NaN", got)
	}
	if got := Gini([]float64{2, -1, 3}); !math.IsNaN(got) {
		t.Errorf("Gini with negative input = %g, want NaN", got)
	}
	// Clean inputs keep the documented contract.
	if got := Gini([]float64{1, 1}); !almost(got, 0, 1e-12) {
		t.Errorf("clean Gini = %g, want 0", got)
	}
}

func TestEMAAlphaValidation(t *testing.T) {
	for _, alpha := range []float64{0, -0.5, 1.5, math.NaN()} {
		if _, err := NewEMA(alpha); err == nil {
			t.Errorf("NewEMA(%g) accepted an invalid smoothing factor", alpha)
		}
		if _, err := NewVectorEMA(alpha, 3); err == nil {
			t.Errorf("NewVectorEMA(%g) accepted an invalid smoothing factor", alpha)
		}
	}
	if _, err := NewEMA(1); err != nil {
		t.Errorf("NewEMA(1) rejected the boundary alpha: %v", err)
	}
	if _, err := NewVectorEMA(0.3, 0); err == nil {
		t.Error("NewVectorEMA accepted a zero length")
	}
}

func TestVectorEMAValuesInto(t *testing.T) {
	v, err := NewVectorEMA(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if v.Initialized() || v.Len() != 2 {
		t.Fatal("fresh VectorEMA state inconsistent")
	}
	v.Observe([]float64{7, 9})
	dst := make([]float64, 2)
	v.ValuesInto(dst)
	if dst[0] != 7 || dst[1] != 9 {
		t.Errorf("ValuesInto = %v, want [7 9]", dst)
	}
	defer func() {
		if recover() == nil {
			t.Error("length-mismatched ValuesInto should panic")
		}
	}()
	v.ValuesInto(make([]float64, 3))
}

func TestImbalance(t *testing.T) {
	if got := Imbalance([]float64{5, 5, 5}); got != 1 {
		t.Errorf("balanced imbalance = %g, want 1", got)
	}
	if got := Imbalance([]float64{10, 0, 0, 2}); !almost(got, 10/3.0, 1e-12) {
		t.Errorf("imbalance = %g, want %g", got, 10/3.0)
	}
	if got := Imbalance(nil); got != 1 {
		t.Errorf("empty imbalance = %g, want 1", got)
	}
}

func TestGini(t *testing.T) {
	if got := Gini([]float64{1, 1, 1, 1}); !almost(got, 0, 1e-12) {
		t.Errorf("equal Gini = %g, want 0", got)
	}
	// All mass on one element of n → (n-1)/n.
	if got := Gini([]float64{0, 0, 0, 8}); !almost(got, 0.75, 1e-12) {
		t.Errorf("concentrated Gini = %g, want 0.75", got)
	}
}

func TestGiniBounds(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		g := Gini(xs)
		return g >= -1e-12 && g < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestImbalanceAtLeastOne(t *testing.T) {
	f := func(raw []uint16) bool {
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		return Imbalance(xs) >= 1-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEMA(t *testing.T) {
	e, err := NewEMA(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if e.Initialized() {
		t.Error("fresh EMA reports initialized")
	}
	if got := e.Observe(10); got != 10 {
		t.Errorf("first observation = %g, want 10", got)
	}
	if got := e.Observe(20); !almost(got, 15, 1e-12) {
		t.Errorf("second observation = %g, want 15", got)
	}
	if !e.Initialized() || e.Value() != 15 {
		t.Error("EMA state inconsistent")
	}
}

func TestVectorEMA(t *testing.T) {
	v, err := NewVectorEMA(0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	v.Observe([]float64{4, 8})
	v.Observe([]float64{8, 0})
	got := v.Values()
	if !almost(got[0], 6, 1e-12) || !almost(got[1], 4, 1e-12) {
		t.Errorf("VectorEMA values = %v, want [6 4]", got)
	}
	// Values() must be a copy.
	got[0] = 99
	if v.Values()[0] == 99 {
		t.Error("Values() aliases internal state")
	}
	defer func() {
		if recover() == nil {
			t.Error("length-mismatched Observe should panic")
		}
	}()
	v.Observe([]float64{1})
}
