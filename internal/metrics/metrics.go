// Package metrics defines the report types shared by the executor, the
// training loop and the experiment harness: per-iteration time breakdowns
// (Fig. 1b, Fig. 10a), per-layer load-imbalance series (Fig. 10b) and
// run-level aggregates (throughput, speedups).
package metrics

import (
	"fmt"

	"laermoe/internal/sim"
	"laermoe/internal/stats"
)

// Breakdown is the measured wall time per activity, averaged across ranks,
// for one iteration. A2A includes straggler waiting inside the collective,
// exactly as a profiler attributes it (Sec. 5.3).
type Breakdown struct {
	Attention  float64
	Gate       float64
	Dispatcher float64
	Expert     float64
	A2A        float64
	Prefetch   float64
	GradSync   float64
	TPComm     float64
	Other      float64
}

// FromResult extracts a Breakdown from a simulation result.
func FromResult(r *sim.Result) Breakdown {
	return Breakdown{
		Attention:  r.MeanCategoryTime(sim.CatAttention),
		Gate:       r.MeanCategoryTime(sim.CatGate),
		Dispatcher: r.MeanCategoryTime(sim.CatDispatcher),
		Expert:     r.MeanCategoryTime(sim.CatExpert),
		A2A:        r.MeanCategoryTime(sim.CatA2A),
		Prefetch:   r.MeanCategoryTime(sim.CatPrefetch),
		GradSync:   r.MeanCategoryTime(sim.CatGradSync),
		TPComm:     r.MeanCategoryTime(sim.CatTPComm),
		Other:      r.MeanCategoryTime(sim.CatOther),
	}
}

// Add returns the element-wise sum of two breakdowns.
func (b Breakdown) Add(o Breakdown) Breakdown {
	return Breakdown{
		Attention:  b.Attention + o.Attention,
		Gate:       b.Gate + o.Gate,
		Dispatcher: b.Dispatcher + o.Dispatcher,
		Expert:     b.Expert + o.Expert,
		A2A:        b.A2A + o.A2A,
		Prefetch:   b.Prefetch + o.Prefetch,
		GradSync:   b.GradSync + o.GradSync,
		TPComm:     b.TPComm + o.TPComm,
		Other:      b.Other + o.Other,
	}
}

// Scale returns the breakdown multiplied by f.
func (b Breakdown) Scale(f float64) Breakdown {
	return Breakdown{
		Attention:  b.Attention * f,
		Gate:       b.Gate * f,
		Dispatcher: b.Dispatcher * f,
		Expert:     b.Expert * f,
		A2A:        b.A2A * f,
		Prefetch:   b.Prefetch * f,
		GradSync:   b.GradSync * f,
		TPComm:     b.TPComm * f,
		Other:      b.Other * f,
	}
}

// Others groups everything that is neither A2A nor expert computation —
// the "Others" bar of Fig. 10a (attention, memory ops, TP communication,
// exposed prefetch/gradient traffic).
func (b Breakdown) Others() float64 {
	return b.Attention + b.Gate + b.Dispatcher + b.Prefetch + b.GradSync + b.TPComm + b.Other
}

// Sum returns the total attributed time.
func (b Breakdown) Sum() float64 { return b.Others() + b.A2A + b.Expert }

// A2AShare returns the fraction of attributed time spent in token
// All-to-All (the headline number of Fig. 1b / Fig. 10a).
func (b Breakdown) A2AShare() float64 {
	s := b.Sum()
	if s == 0 {
		return 0
	}
	return b.A2A / s
}

func (b Breakdown) String() string {
	return fmt.Sprintf("a2a %.1f%%, expert %.1f%%, others %.1f%%",
		100*b.A2A/b.Sum(), 100*b.Expert/b.Sum(), 100*b.Others()/b.Sum())
}

// Iteration captures one simulated training iteration.
type Iteration struct {
	Time      float64   // wall-clock makespan of the iteration
	Breakdown Breakdown // mean across ranks

	// PerLayerImbalance is, for every MoE layer, max-device token count
	// divided by the perfectly balanced count (Fig. 10b; 1.0 = perfect).
	PerLayerImbalance []float64

	// PlannerTime is the CPU time the re-layout solver needed this
	// iteration (asynchronous; informational).
	PlannerTime float64
}

// Run aggregates a multi-iteration simulation.
type Run struct {
	System      string
	Model       string
	Iterations  []Iteration
	GlobalBatch int // tokens per iteration across the cluster
	Warmup      int // iterations excluded from aggregates
}

// measured returns the post-warmup iterations.
func (r *Run) measured() []Iteration {
	if r.Warmup >= len(r.Iterations) {
		return r.Iterations
	}
	return r.Iterations[r.Warmup:]
}

// MeanIterationTime returns the average post-warmup iteration time.
func (r *Run) MeanIterationTime() float64 {
	ms := r.measured()
	times := make([]float64, len(ms))
	for i, it := range ms {
		times[i] = it.Time
	}
	return stats.Mean(times)
}

// Throughput returns tokens/second post-warmup.
func (r *Run) Throughput() float64 {
	t := r.MeanIterationTime()
	if t == 0 {
		return 0
	}
	return float64(r.GlobalBatch) / t
}

// MeanBreakdown averages the post-warmup breakdowns.
func (r *Run) MeanBreakdown() Breakdown {
	ms := r.measured()
	var sum Breakdown
	for _, it := range ms {
		sum = sum.Add(it.Breakdown)
	}
	if len(ms) == 0 {
		return sum
	}
	return sum.Scale(1 / float64(len(ms)))
}

// MeanPerLayerImbalance averages the Fig. 10b series across post-warmup
// iterations, returning one value per layer.
func (r *Run) MeanPerLayerImbalance() []float64 {
	ms := r.measured()
	if len(ms) == 0 {
		return nil
	}
	out := make([]float64, len(ms[0].PerLayerImbalance))
	for _, it := range ms {
		for l, v := range it.PerLayerImbalance {
			out[l] += v
		}
	}
	for l := range out {
		out[l] /= float64(len(ms))
	}
	return out
}
