package metrics

import (
	"math"
	"testing"

	"laermoe/internal/sim"
)

func TestBreakdownFromResult(t *testing.T) {
	e := sim.NewEngine(2)
	for d := 0; d < 2; d++ {
		e.Compute("attn", d, sim.StreamCompute, sim.CatAttention, 1)
		e.Compute("expert", d, sim.StreamCompute, sim.CatExpert, 2)
	}
	e.Collective("a2a", []int{0, 1}, sim.StreamA2A, sim.CatA2A, 0.5, nil)
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	bd := FromResult(res)
	if bd.Attention != 1 || bd.Expert != 2 {
		t.Errorf("breakdown = %+v", bd)
	}
	if bd.A2A <= 0 {
		t.Error("a2a missing from breakdown")
	}
}

func TestBreakdownArithmetic(t *testing.T) {
	a := Breakdown{Attention: 1, Expert: 2, A2A: 3, Prefetch: 4}
	b := Breakdown{Attention: 10, Expert: 20, A2A: 30, TPComm: 5}
	sum := a.Add(b)
	if sum.Attention != 11 || sum.Expert != 22 || sum.A2A != 33 || sum.Prefetch != 4 || sum.TPComm != 5 {
		t.Errorf("Add = %+v", sum)
	}
	half := sum.Scale(0.5)
	if half.Attention != 5.5 || half.A2A != 16.5 {
		t.Errorf("Scale = %+v", half)
	}
	if got := a.Others(); got != 5 { // attention + prefetch
		t.Errorf("Others = %g, want 5", got)
	}
	if got := a.Sum(); got != 10 {
		t.Errorf("Sum = %g, want 10", got)
	}
	if got := a.A2AShare(); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("A2AShare = %g, want 0.3", got)
	}
	if (Breakdown{}).A2AShare() != 0 {
		t.Error("empty breakdown A2AShare should be 0")
	}
	if a.String() == "" {
		t.Error("empty breakdown string")
	}
}

func TestRunAggregates(t *testing.T) {
	run := &Run{
		System:      "laer",
		Model:       "tiny",
		GlobalBatch: 1000,
		Warmup:      1,
		Iterations: []Iteration{
			{Time: 100, Breakdown: Breakdown{A2A: 50}, PerLayerImbalance: []float64{9, 9}},
			{Time: 2, Breakdown: Breakdown{A2A: 1}, PerLayerImbalance: []float64{1, 3}},
			{Time: 4, Breakdown: Breakdown{A2A: 3}, PerLayerImbalance: []float64{3, 5}},
		},
	}
	if got := run.MeanIterationTime(); got != 3 {
		t.Errorf("MeanIterationTime = %g, want 3 (warmup excluded)", got)
	}
	if got := run.Throughput(); math.Abs(got-1000.0/3) > 1e-9 {
		t.Errorf("Throughput = %g, want %g", got, 1000.0/3)
	}
	if got := run.MeanBreakdown().A2A; got != 2 {
		t.Errorf("MeanBreakdown.A2A = %g, want 2", got)
	}
	imb := run.MeanPerLayerImbalance()
	if len(imb) != 2 || imb[0] != 2 || imb[1] != 4 {
		t.Errorf("MeanPerLayerImbalance = %v, want [2 4]", imb)
	}
}

func TestRunWarmupLargerThanIterations(t *testing.T) {
	run := &Run{
		GlobalBatch: 10,
		Warmup:      5,
		Iterations:  []Iteration{{Time: 2}},
	}
	if got := run.MeanIterationTime(); got != 2 {
		t.Errorf("over-long warmup should fall back to all iterations, got %g", got)
	}
}

func TestEmptyRun(t *testing.T) {
	run := &Run{}
	if run.Throughput() != 0 {
		t.Error("empty run throughput should be 0")
	}
	if run.MeanPerLayerImbalance() != nil {
		t.Error("empty run imbalance should be nil")
	}
}
