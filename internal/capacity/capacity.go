// Package capacity implements the algorithmic load-limiting baseline of
// Sec. 2: GShard/Switch-style expert capacity factors that *drop* tokens
// overflowing an expert's budget instead of rebalancing the system. The
// paper argues these approaches trade model quality for system efficiency;
// this package quantifies both sides — the balanced routing they produce
// and the fraction of token assignments they discard.
package capacity

import (
	"fmt"

	"laermoe/internal/trace"
)

// Result describes the effect of applying a capacity factor.
type Result struct {
	// Clipped is the routing matrix after dropping overflow assignments.
	Clipped *trace.RoutingMatrix
	// DroppedPerExpert counts discarded assignments per expert.
	DroppedPerExpert []int
	// DropFraction is dropped/total assignments.
	DropFraction float64
}

// Apply enforces a capacity factor: each expert accepts at most
// factor * (total assignments / experts) assignments; overflow is dropped.
// Each device loses assignments proportionally to its contribution to the
// overloaded expert (largest-remainder rounding keeps totals exact), the
// deterministic equivalent of GShard's position-based truncation under a
// uniform token order.
func Apply(r *trace.RoutingMatrix, factor float64) (*Result, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("capacity: factor %g must be positive", factor)
	}
	total := r.Total()
	if total == 0 {
		return &Result{Clipped: r.Clone(), DroppedPerExpert: make([]int, r.E)}, nil
	}
	budget := int(factor * float64(total) / float64(r.E))
	out := &Result{Clipped: r.Clone(), DroppedPerExpert: make([]int, r.E)}
	dropped := 0
	for j := 0; j < r.E; j++ {
		load := 0
		for i := 0; i < r.N; i++ {
			load += r.R[i][j]
		}
		if load <= budget {
			continue
		}
		overflow := load - budget
		out.DroppedPerExpert[j] = overflow
		dropped += overflow
		removeProportionally(out.Clipped, j, overflow, load)
	}
	out.DropFraction = float64(dropped) / float64(total)
	return out, nil
}

// removeProportionally removes `overflow` assignments of expert j spread
// across devices proportionally to their contributions.
func removeProportionally(m *trace.RoutingMatrix, j, overflow, load int) {
	type rem struct {
		dev  int
		frac float64
	}
	removed := 0
	rems := make([]rem, 0, m.N)
	for i := 0; i < m.N; i++ {
		if m.R[i][j] == 0 {
			continue
		}
		exact := float64(overflow) * float64(m.R[i][j]) / float64(load)
		take := int(exact)
		if take > m.R[i][j] {
			take = m.R[i][j]
		}
		m.R[i][j] -= take
		removed += take
		rems = append(rems, rem{dev: i, frac: exact - float64(take)})
	}
	// Hand out the remainder to the largest fractional parts.
	for removed < overflow {
		best := -1
		for k := range rems {
			if m.R[rems[k].dev][j] == 0 {
				continue
			}
			if best == -1 || rems[k].frac > rems[best].frac {
				best = k
			}
		}
		if best == -1 {
			break // nothing left to remove
		}
		m.R[rems[best].dev][j]--
		rems[best].frac = -1
		removed++
	}
}

// QualityPenalty estimates the convergence slowdown caused by dropping a
// fraction of assignments: a dropped token assignment contributes no
// gradient, so effective per-step progress scales roughly with the kept
// fraction. It returns a multiplier for the convergence model's per-step
// progress (1.0 = no penalty).
func QualityPenalty(dropFraction float64) float64 {
	if dropFraction <= 0 {
		return 1
	}
	if dropFraction >= 1 {
		return 0
	}
	return 1 - dropFraction
}

// Sweep applies a set of capacity factors to the same routing matrix and
// reports drop fraction and residual imbalance for each — the
// quality/efficiency trade-off curve of the algorithmic approach.
func Sweep(r *trace.RoutingMatrix, factors []float64) ([]Result, error) {
	out := make([]Result, 0, len(factors))
	for _, f := range factors {
		res, err := Apply(r, f)
		if err != nil {
			return nil, err
		}
		out = append(out, *res)
	}
	return out, nil
}
