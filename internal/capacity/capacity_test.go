package capacity

import (
	"math"
	"testing"

	"laermoe/internal/stats"
	"laermoe/internal/trace"
)

func skewed(t *testing.T) *trace.RoutingMatrix {
	t.Helper()
	gen, err := trace.NewGenerator(trace.GeneratorConfig{
		Devices: 8, Experts: 8, Layers: 1, TokensPerDevice: 2048, TopK: 2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return gen.Step()[0]
}

// TestCapacityCapsExpertLoads: after applying factor f, no expert exceeds
// f * total/E assignments, and the clipped matrix stays valid.
func TestCapacityCapsExpertLoads(t *testing.T) {
	r := skewed(t)
	res, err := Apply(r, 1.25)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Clipped.Validate(); err != nil {
		t.Fatal(err)
	}
	budget := 1.25 * float64(r.Total()) / float64(r.E)
	for j, load := range res.Clipped.ExpertLoads() {
		if load > budget+0.5 {
			t.Errorf("expert %d load %.0f exceeds budget %.0f", j, load, budget)
		}
	}
}

// TestDropAccounting: dropped counts reconcile exactly with the load
// difference, per expert and in total.
func TestDropAccounting(t *testing.T) {
	r := skewed(t)
	res, err := Apply(r, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	before := r.ExpertLoads()
	after := res.Clipped.ExpertLoads()
	totalDropped := 0
	for j := range before {
		diff := int(before[j] - after[j])
		if diff != res.DroppedPerExpert[j] {
			t.Errorf("expert %d: dropped %d, accounted %d", j, diff, res.DroppedPerExpert[j])
		}
		totalDropped += diff
	}
	want := float64(totalDropped) / float64(r.Total())
	if math.Abs(res.DropFraction-want) > 1e-12 {
		t.Errorf("DropFraction = %g, want %g", res.DropFraction, want)
	}
	if res.DropFraction <= 0 {
		t.Error("factor 1.0 on skewed routing must drop something")
	}
}

// TestTightFactorBalances: factor 1.0 caps the hottest expert at the
// original mean (reducing imbalance at the cost of drops); a generous
// factor drops nothing and keeps the matrix untouched.
func TestTightFactorBalances(t *testing.T) {
	r := skewed(t)
	tight, err := Apply(r, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	loose, err := Apply(r, 10)
	if err != nil {
		t.Fatal(err)
	}
	before := stats.Imbalance(r.ExpertLoads())
	after := stats.Imbalance(tight.Clipped.ExpertLoads())
	if after >= before {
		t.Errorf("factor 1.0 did not reduce imbalance: %.3f -> %.3f", before, after)
	}
	// The cap bounds the absolute max at the original mean; cold experts
	// stay cold, so the ratio to the shrunken mean stays above 1.
	if maxLoad := stats.Max(tight.Clipped.ExpertLoads()); maxLoad > stats.Mean(r.ExpertLoads())+0.5 {
		t.Errorf("max load %.0f exceeds the factor-1.0 cap %.0f", maxLoad, stats.Mean(r.ExpertLoads()))
	}
	if loose.DropFraction != 0 {
		t.Errorf("generous factor dropped %.3f of tokens", loose.DropFraction)
	}
	for i := 0; i < r.N; i++ {
		for j := 0; j < r.E; j++ {
			if loose.Clipped.R[i][j] != r.R[i][j] {
				t.Fatal("generous factor modified the matrix")
			}
		}
	}
}

// TestSweepMonotone: larger factors drop monotonically fewer tokens.
func TestSweepMonotone(t *testing.T) {
	r := skewed(t)
	results, err := Sweep(r, []float64{1.0, 1.25, 1.5, 2.0})
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k < len(results); k++ {
		if results[k].DropFraction > results[k-1].DropFraction+1e-12 {
			t.Errorf("drop fraction not monotone: %.4f then %.4f",
				results[k-1].DropFraction, results[k].DropFraction)
		}
	}
}

func TestQualityPenalty(t *testing.T) {
	if QualityPenalty(0) != 1 {
		t.Error("no drops should mean no penalty")
	}
	if QualityPenalty(0.2) != 0.8 {
		t.Errorf("penalty(0.2) = %g, want 0.8", QualityPenalty(0.2))
	}
	if QualityPenalty(1.5) != 0 {
		t.Error("dropping everything should zero progress")
	}
}

func TestApplyErrors(t *testing.T) {
	r := skewed(t)
	if _, err := Apply(r, 0); err == nil {
		t.Error("zero factor accepted")
	}
	empty := trace.NewRoutingMatrix(2, 2)
	res, err := Apply(empty, 1)
	if err != nil || res.DropFraction != 0 {
		t.Errorf("empty matrix mishandled: %v %v", res, err)
	}
}
