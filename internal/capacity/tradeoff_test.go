package capacity

import (
	"testing"

	"laermoe/internal/training"
)

// TestCapacityTradeoff quantifies the Sec. 2 argument against algorithmic
// load limiting: a tight capacity factor balances the system (shorter
// iterations) but drops token assignments, and once the convergence
// penalty of the drops is accounted for, reaching the target loss can take
// *longer* than not dropping at all — whereas LAER gets the balanced
// iterations without the quality penalty.
func TestCapacityTradeoff(t *testing.T) {
	r := skewed(t)
	res, err := Apply(r, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if res.DropFraction < 0.05 {
		t.Skipf("workload not skewed enough to drop tokens (%.3f)", res.DropFraction)
	}

	m := training.DefaultConvergenceModel()
	target := m.Loss(2500, 0)
	stepsNoDrop := m.StepsToLoss(target, 0, 200000)
	// Dropping scales per-step progress; steps inflate by 1/penalty.
	penalty := QualityPenalty(res.DropFraction)
	stepsWithDrop := int(float64(stepsNoDrop) / penalty)

	if stepsWithDrop <= stepsNoDrop {
		t.Fatalf("drops must cost steps: %d vs %d", stepsWithDrop, stepsNoDrop)
	}
	// The balanced-iteration speedup from capping (bounded by the
	// imbalance removed, here < 2x) must beat the step inflation for the
	// approach to pay off; with >5% drops the inflation is >5%, which is
	// exactly the regime where the paper's system-level approach wins
	// both axes.
	inflation := float64(stepsWithDrop) / float64(stepsNoDrop)
	if inflation < 1.05 {
		t.Errorf("step inflation %.3f unexpectedly small for drop fraction %.3f",
			inflation, res.DropFraction)
	}
}
