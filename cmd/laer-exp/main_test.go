package main

import (
	"path/filepath"
	"strings"
	"testing"

	"laermoe"
)

// Regression tests for the fail-fast flag validation: a typo'd experiment
// id used to run every preceding id before exiting 1, a bad -memprofile
// directory surfaced only after the whole sweep, and a negative -parallel
// reached the worker pool. All three now exit 2 with a usage message
// before any sweep work runs.
func TestValidateFlags(t *testing.T) {
	type f struct {
		ids                    []string
		parallel               int
		cpuprofile, memprofile string
	}
	def := f{ids: []string{"fig8"}}
	ok := func(mut func(*f)) {
		t.Helper()
		c := def
		mut(&c)
		if err := validateFlags(c.ids, c.parallel, c.cpuprofile, c.memprofile); err != nil {
			t.Errorf("valid flags rejected: %v", err)
		}
	}
	bad := func(wantSub string, mut func(*f)) {
		t.Helper()
		c := def
		mut(&c)
		err := validateFlags(c.ids, c.parallel, c.cpuprofile, c.memprofile)
		if err == nil {
			t.Errorf("invalid flags accepted (want error containing %q)", wantSub)
			return
		}
		if !strings.Contains(err.Error(), wantSub) {
			t.Errorf("error %q does not mention %q", err, wantSub)
		}
	}

	ok(func(*f) {})
	ok(func(c *f) { c.ids = []string{"all"} })
	ok(func(c *f) { c.ids = laermoe.ExperimentIDs() })
	bad("unknown experiment", func(c *f) { c.ids = []string{"fig99"} })
	bad("unknown experiment", func(c *f) { c.ids = []string{"fig8", "fig99"} })
	bad("'all'", func(c *f) { c.ids = []string{"all", "fig8"} })

	bad("-parallel", func(c *f) { c.parallel = -1 })
	ok(func(c *f) { c.parallel = 0 })
	ok(func(c *f) { c.parallel = 7 })

	dir := t.TempDir()
	ok(func(c *f) { c.cpuprofile = filepath.Join(dir, "cpu.pprof") })
	ok(func(c *f) { c.memprofile = "heap.pprof" }) // bare name = cwd
	bad("-cpuprofile", func(c *f) { c.cpuprofile = filepath.Join(dir, "missing", "cpu.pprof") })
	bad("-memprofile", func(c *f) { c.memprofile = "/no/such/dir/heap.pprof" })
}
