// laer-exp regenerates the paper's tables and figures from the simulator.
//
// Usage:
//
//	laer-exp -list
//	laer-exp fig8            # one experiment
//	laer-exp -quick all      # every experiment, trimmed sweeps
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"laermoe"
	"laermoe/internal/prof"
)

func main() {
	var (
		quick      = flag.Bool("quick", false, "trim sweep dimensions for a fast run")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		parallel   = flag.Int("parallel", 0, "worker pool size for sweep cells (0 = all CPUs, 1 = serial)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("experiments:", strings.Join(laermoe.ExperimentIDs(), ", "))
		fmt.Println("use 'laer-exp all' to run everything")
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: laer-exp [-quick] <experiment-id>|all")
		fmt.Fprintln(os.Stderr, "ids:", strings.Join(laermoe.ExperimentIDs(), ", "))
		os.Exit(2)
	}
	// A typo'd experiment id, a negative worker count or a profile path in
	// a missing directory must fail before any sweep runs — with the usage
	// exit code 2, like the other laer-* tools (runtime failures exit 1).
	if err := validateFlags(args, *parallel, *cpuprofile, *memprofile); err != nil {
		fmt.Fprintln(os.Stderr, "laer-exp:", err)
		fmt.Fprintln(os.Stderr, "run 'laer-exp -list' for the experiment ids, or -h for usage")
		os.Exit(2)
	}

	ids := args
	if len(args) == 1 && args[0] == "all" {
		ids = laermoe.ExperimentIDs()
	}
	stopCPU, err := prof.Start(*cpuprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "laer-exp:", err)
		os.Exit(1)
	}
	opts := laermoe.ExperimentOptions{Quick: *quick, Parallelism: *parallel}
	for _, id := range ids {
		if err := laermoe.RunExperimentOpts(id, opts, os.Stdout); err != nil {
			stopCPU()
			fmt.Fprintf(os.Stderr, "laer-exp %s: %v\n", id, err)
			os.Exit(1)
		}
	}
	stopCPU()
	if err := prof.WriteHeap(*memprofile); err != nil {
		fmt.Fprintln(os.Stderr, "laer-exp:", err)
		os.Exit(1)
	}
}

// validateFlags rejects bad experiment ids, worker counts and profile
// destinations before any sweep work runs.
func validateFlags(ids []string, parallel int, cpuprofile, memprofile string) error {
	if parallel < 0 {
		return fmt.Errorf("-parallel %d must not be negative (0 = all CPUs, 1 = serial)", parallel)
	}
	for _, p := range []struct{ flag, path string }{
		{"-cpuprofile", cpuprofile},
		{"-memprofile", memprofile},
	} {
		if p.path == "" {
			continue
		}
		// The profile file itself is created on demand; its directory must
		// already exist, or the failure would surface only at exit (for
		// -memprofile, after the whole sweep has run).
		if fi, err := os.Stat(filepath.Dir(p.path)); err != nil || !fi.IsDir() {
			return fmt.Errorf("%s %q: directory %q does not exist", p.flag, p.path, filepath.Dir(p.path))
		}
	}
	known := laermoe.ExperimentIDs()
	for _, id := range ids {
		if id == "all" {
			if len(ids) > 1 {
				return fmt.Errorf("'all' runs every experiment and cannot be combined with other ids")
			}
			continue
		}
		found := false
		for _, k := range known {
			if k == id {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("unknown experiment %q (have %s)", id, strings.Join(known, ", "))
		}
	}
	return nil
}
