// laer-exp regenerates the paper's tables and figures from the simulator.
//
// Usage:
//
//	laer-exp -list
//	laer-exp fig8            # one experiment
//	laer-exp -quick all      # every experiment, trimmed sweeps
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"laermoe"
	"laermoe/internal/prof"
)

func main() {
	var (
		quick      = flag.Bool("quick", false, "trim sweep dimensions for a fast run")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		parallel   = flag.Int("parallel", 0, "worker pool size for sweep cells (0 = all CPUs, 1 = serial)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("experiments:", strings.Join(laermoe.ExperimentIDs(), ", "))
		fmt.Println("use 'laer-exp all' to run everything")
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: laer-exp [-quick] <experiment-id>|all")
		fmt.Fprintln(os.Stderr, "ids:", strings.Join(laermoe.ExperimentIDs(), ", "))
		os.Exit(2)
	}

	ids := args
	if len(args) == 1 && args[0] == "all" {
		ids = laermoe.ExperimentIDs()
	}
	stopCPU, err := prof.Start(*cpuprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "laer-exp:", err)
		os.Exit(1)
	}
	opts := laermoe.ExperimentOptions{Quick: *quick, Parallelism: *parallel}
	for _, id := range ids {
		if err := laermoe.RunExperimentOpts(id, opts, os.Stdout); err != nil {
			stopCPU()
			fmt.Fprintf(os.Stderr, "laer-exp %s: %v\n", id, err)
			os.Exit(1)
		}
	}
	stopCPU()
	if err := prof.WriteHeap(*memprofile); err != nil {
		fmt.Fprintln(os.Stderr, "laer-exp:", err)
		os.Exit(1)
	}
}
