// benchdiff compares two `go test -bench` output files benchmark by
// benchmark and prints the ns/op, B/op and allocs/op deltas. It is the
// dependency-free comparator behind `make bench-diff`; benchstat (proper
// statistics across repeated samples) may additionally be printed by the
// Makefile when installed, but the container image cannot assume it.
//
// Usage:
//
//	benchdiff old.txt new.txt
//	benchdiff -gate -threshold 0.15 -match 'SolveWarm|Generator' old.txt new.txt
//
// Without -gate the exit status is always 0 on parseable input and the
// comparison is informational — single-shot bench samples on shared
// runners are too noisy to fail builds on wholesale. With -gate, the
// benchmarks whose names match -match become blocking: the run exits 1
// when any of them regresses ns/op or allocs/op by more than -threshold,
// or disappears from the new run entirely. The gate set should be the
// hot benchmarks whose op counts are fixed (-benchtime=100x) and large
// enough to be timing-stable.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

type result struct {
	name   string
	nsOp   float64
	bOp    float64
	allocs float64
	has    [3]bool
}

// parse extracts benchmark lines ("BenchmarkName-8  100  123 ns/op ...").
func parse(path string) ([]result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []result
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		// Strip the -GOMAXPROCS suffix so runs from different machines align.
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		r := result{name: name}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.nsOp, r.has[0] = v, true
			case "B/op":
				r.bOp, r.has[1] = v, true
			case "allocs/op":
				r.allocs, r.has[2] = v, true
			}
		}
		if r.has[0] {
			out = append(out, r)
		}
	}
	return out, sc.Err()
}

func delta(old, new float64) string {
	if old == 0 {
		if new == 0 {
			return "  ±0.0%"
		}
		return "   new"
	}
	return fmt.Sprintf("%+6.1f%%", 100*(new-old)/old)
}

func human(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fs", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.1fms", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fµs", v/1e3)
	default:
		return fmt.Sprintf("%.0fns", v)
	}
}

func main() {
	gate := flag.Bool("gate", false, "fail (exit 1) on gated-benchmark regressions past -threshold")
	threshold := flag.Float64("threshold", 0.15, "relative regression the gate tolerates (0.15 = 15%)")
	match := flag.String("match", "", "regexp selecting the gated benchmarks (with -gate; empty gates all)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-gate -threshold 0.15 -match RE] <old.txt> <new.txt>")
		os.Exit(2)
	}
	gated, err := regexp.Compile(*match)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff: -match:", err)
		os.Exit(2)
	}
	olds, err := parse(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	news, err := parse(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	oldBy := make(map[string]result, len(olds))
	for _, r := range olds {
		oldBy[r.name] = r
	}
	var breaches []string
	regressed := func(name, metric string, old, new float64) {
		if old > 0 && new > old*(1+*threshold) {
			breaches = append(breaches,
				fmt.Sprintf("%s: %s %+.1f%% (%s -> %s, gate %.0f%%)",
					name, metric, 100*(new-old)/old, human(old), human(new), 100**threshold))
		}
	}
	fmt.Printf("%-52s %12s %12s %8s %14s %10s\n", "benchmark", "old ns/op", "new ns/op", "Δ", "allocs old→new", "Δ")
	matched := 0
	for _, n := range news {
		o, ok := oldBy[n.name]
		if !ok {
			fmt.Printf("%-52s %12s %12s %8s\n", n.name, "-", human(n.nsOp), "new")
			continue
		}
		matched++
		allocs := "-"
		allocsDelta := ""
		if o.has[2] && n.has[2] {
			allocs = fmt.Sprintf("%.0f→%.0f", o.allocs, n.allocs)
			allocsDelta = delta(o.allocs, n.allocs)
		}
		fmt.Printf("%-52s %12s %12s %8s %14s %10s\n",
			n.name, human(o.nsOp), human(n.nsOp), delta(o.nsOp, n.nsOp), allocs, allocsDelta)
		if *gate && gated.MatchString(n.name) {
			regressed(n.name, "ns/op", o.nsOp, n.nsOp)
			if o.has[2] && n.has[2] {
				regressed(n.name, "allocs/op", o.allocs, n.allocs)
			}
		}
		delete(oldBy, n.name)
	}
	// Whatever is left in oldBy has no counterpart in the new run; sorted
	// so repeated runs print identically. A gated benchmark disappearing
	// is itself a breach: a rename must re-baseline, not slip the gate.
	gone := make([]string, 0, len(oldBy))
	for name := range oldBy {
		gone = append(gone, name)
	}
	sort.Strings(gone)
	for _, name := range gone {
		fmt.Printf("%-52s %12s %12s %8s\n", name, human(oldBy[name].nsOp), "-", "gone")
		if *gate && gated.MatchString(name) {
			breaches = append(breaches, fmt.Sprintf("%s: gated benchmark missing from the new run", name))
		}
	}
	if !*gate {
		fmt.Printf("\n%d benchmarks compared (informational; timing noise on shared runners is expected)\n", matched)
		return
	}
	if len(breaches) > 0 {
		fmt.Printf("\nBENCH GATE FAILED (%d breach(es) past %.0f%% vs baseline):\n", len(breaches), 100**threshold)
		for _, b := range breaches {
			fmt.Println("  " + b)
		}
		fmt.Println("intentional? refresh the baseline with `make bench-baseline` and commit it")
		os.Exit(1)
	}
	fmt.Printf("\n%d benchmarks compared; gate (%s <= %.0f%%) passed\n", matched, *match, 100**threshold)
}
