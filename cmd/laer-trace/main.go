// laer-trace generates synthetic routing traces (JSON lines) or inspects
// recorded ones.
//
// Usage:
//
//	laer-trace -gen -iters 50 -layers 32 -out trace.jsonl
//	laer-trace -inspect trace.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"laermoe/internal/stats"
	"laermoe/internal/trace"
	"laermoe/internal/viz"
)

func main() {
	var (
		gen     = flag.Bool("gen", false, "generate a trace")
		inspect = flag.String("inspect", "", "inspect a recorded trace")
		out     = flag.String("out", "", "output file for -gen (default stdout)")
		devices = flag.Int("devices", 32, "devices")
		experts = flag.Int("experts", 8, "experts")
		layers  = flag.Int("layers", 32, "layers")
		iters   = flag.Int("iters", 50, "iterations")
		tokens  = flag.Int("tokens", 16384, "tokens per device")
		topk    = flag.Int("topk", 2, "experts per token")
		aux     = flag.Float64("aux", 0, "auxiliary loss weight")
		skew    = flag.Float64("skew", 0, "routing skew (0 = default)")
		seed    = flag.Int64("seed", 1, "seed")
	)
	flag.Parse()

	switch {
	case *gen:
		w := io.Writer(os.Stdout)
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		g, err := trace.NewGenerator(trace.GeneratorConfig{
			Devices: *devices, Experts: *experts, Layers: *layers,
			TokensPerDevice: *tokens, TopK: *topk,
			AuxLossWeight: *aux, Skew: *skew, Seed: *seed,
		})
		if err != nil {
			fatal(err)
		}
		tw := trace.NewWriter(w)
		for it := 0; it < *iters; it++ {
			for l, m := range g.Step() {
				if err := tw.Write(it, l, m); err != nil {
					fatal(err)
				}
			}
		}
		if err := tw.Flush(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d iterations x %d layers\n", *iters, *layers)

	case *inspect != "":
		f, err := os.Open(*inspect)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		all, err := trace.ReadAll(f)
		if err != nil {
			fatal(err)
		}
		if len(all) == 0 {
			fatal(fmt.Errorf("empty trace"))
		}
		fmt.Printf("%d iterations, %d layers, %d devices, %d experts\n\n",
			len(all), len(all[0]), all[0][0].N, all[0][0].E)
		var imbs []float64
		for _, layersMs := range all {
			imbs = append(imbs, stats.Imbalance(layersMs[0].ExpertLoads()))
		}
		fmt.Printf("layer-0 expert imbalance per iteration: mean %.2f, max %.2f\n",
			stats.Mean(imbs), stats.Max(imbs))
		fmt.Printf("trend: %s\n\n", viz.Sparkline(imbs))
		last := all[len(all)-1][0]
		loads := last.ExpertLoads()
		labels := make([]string, len(loads))
		for j := range loads {
			labels[j] = fmt.Sprintf("expert %d", j)
		}
		fmt.Println("final iteration, layer 0 expert loads:")
		viz.BarChart(os.Stdout, labels, loads, 40, " tok")

	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "laer-trace:", err)
	os.Exit(1)
}
