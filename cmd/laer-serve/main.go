// laer-serve runs the re-layout planning service: a long-lived HTTP/JSON
// daemon where clients open planning sessions (cluster shape, replan
// policy, predictor), POST per-epoch expert-load observations and receive
// re-layout decisions — keep, warm replan or predictive replan per layer,
// with migration cost and predicted imbalance. Decisions are byte-identical
// to what laermoe.SimulateOnline reports for the same observation stream.
//
// Usage:
//
//	laer-serve -addr 127.0.0.1:8080
//	curl -s localhost:8080/healthz
//	curl -s -XPOST localhost:8080/v1/sessions -d '{"policy":"warm"}'
//	curl -s localhost:8080/metrics
//
// SIGINT/SIGTERM drain the daemon gracefully: in-flight solves complete
// (bounded by -drain) before the process exits 0.
//
// With -journal-dir, sessions are durable: every observation and decision
// is event-sourced to an append-only journal, and a restarted daemon
// replays each session back to byte-identical planner state before it
// accepts requests.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"laermoe"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "listen address (use port 0 for an ephemeral port)")
		parallelism = flag.Int("parallelism", 0, "worker budget shared by all sessions' solves (0 = all CPUs)")
		maxSessions = flag.Int("max-sessions", 64, "maximum concurrently open sessions")
		sessionTTL  = flag.Duration("session-ttl", 0, "evict sessions idle longer than this (0 = never)")
		journalDir  = flag.String("journal-dir", "", "event-source sessions to this directory and replay them on boot (empty = no durability)")
		drain       = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
		quiet       = flag.Bool("quiet", false, "suppress per-request logging (the listening line is always printed)")
	)
	flag.Parse()

	// Flag validation fails fast with usage exit code 2, like the other
	// tools.
	if err := validateFlags(*addr, *parallelism, *maxSessions, *sessionTTL, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "laer-serve:", err)
		fmt.Fprintln(os.Stderr, "run 'laer-serve -h' for usage")
		os.Exit(2)
	}

	var logger *log.Logger
	if !*quiet {
		logger = log.New(os.Stderr, "laer-serve: ", log.LstdFlags)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := laermoe.Serve(ctx, laermoe.ServeOptions{
		Addr:         *addr,
		Parallelism:  *parallelism,
		MaxSessions:  *maxSessions,
		SessionTTL:   *sessionTTL,
		JournalDir:   *journalDir,
		DrainTimeout: *drain,
		Log:          logger,
		OnReady: func(bound string) {
			// The one line the daemon-smoke CI job (and any wrapper script)
			// parses to learn the ephemeral port; stdout, unconditionally.
			fmt.Printf("laer-serve listening on %s\n", bound)
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "laer-serve:", err)
		os.Exit(1)
	}
}

func validateFlags(addr string, parallelism, maxSessions int, sessionTTL, drain time.Duration) error {
	if addr == "" {
		return fmt.Errorf("-addr must not be empty")
	}
	if parallelism < 0 {
		return fmt.Errorf("-parallelism %d must not be negative", parallelism)
	}
	if maxSessions < 1 {
		return fmt.Errorf("-max-sessions %d must be at least 1", maxSessions)
	}
	if sessionTTL < 0 {
		return fmt.Errorf("-session-ttl %s must not be negative (0 disables eviction)", sessionTTL)
	}
	if drain <= 0 {
		return fmt.Errorf("-drain %s must be positive", drain)
	}
	return nil
}
