// laer-plan solves one expert re-layout problem: it generates (or loads) a
// routing matrix, runs the paper's planner (replica allocation, expert
// relocation, lite routing) and prints the layout and the balance
// improvement.
//
// Usage:
//
//	laer-plan -experts 8 -capacity 2 -tokens 16384 -seed 3
//	laer-plan -trace routing.jsonl       # first record of a recorded trace
package main

import (
	"flag"
	"fmt"
	"os"

	"laermoe"
	"laermoe/internal/trace"
	"laermoe/internal/viz"
)

func main() {
	var (
		experts   = flag.Int("experts", 8, "number of experts")
		capacity  = flag.Int("capacity", 2, "experts restored per device (C)")
		tokens    = flag.Int("tokens", 16384, "tokens per device")
		topk      = flag.Int("topk", 2, "experts per token")
		nodes     = flag.Int("nodes", 4, "cluster nodes")
		gpus      = flag.Int("gpus", 8, "GPUs per node")
		aux       = flag.Float64("aux", 0, "auxiliary loss weight")
		seed      = flag.Int64("seed", 1, "random seed")
		traceFile = flag.String("trace", "", "optional recorded trace (JSON lines); uses its first record")
		epsilon   = flag.Int("epsilon", 2, "solver candidate set size |ε|")
	)
	flag.Parse()

	cluster, err := laermoe.NewCluster(laermoe.ClusterSpec{Nodes: *nodes, GPUsPerNode: *gpus})
	if err != nil {
		fatal(err)
	}

	var routing [][]int
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		rec, err := trace.NewReader(f).Next()
		if err != nil {
			fatal(fmt.Errorf("reading %s: %w", *traceFile, err))
		}
		routing = rec.R
	} else {
		routing, err = laermoe.GenerateRouting(cluster, *experts, *tokens, *topk, *aux, *seed)
		if err != nil {
			fatal(err)
		}
	}

	res, err := laermoe.PlanLayout(laermoe.PlanRequest{
		Cluster: cluster, Routing: routing, Capacity: *capacity,
		Epsilon: *epsilon, Seed: *seed,
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("cluster: %s\n", cluster)
	fmt.Printf("imbalance: static EP %.3f -> planned %.3f (1.0 = perfect)\n\n",
		res.ImbalanceBefore, res.ImbalanceAfter)

	rows := [][]string{{"expert", "replicas", "devices"}}
	for j, reps := range res.Replicas {
		devs := ""
		for d, v := range res.Layout[j] {
			for k := 0; k < v; k++ {
				if devs != "" {
					devs += ","
				}
				devs += fmt.Sprintf("%d", d)
			}
		}
		rows = append(rows, []string{fmt.Sprintf("%d", j), fmt.Sprintf("%d", reps), devs})
	}
	viz.Table(os.Stdout, rows)

	fmt.Println("\nper-device load under lite routing:")
	loads := make([]float64, len(res.DeviceLoads))
	labels := make([]string, len(res.DeviceLoads))
	for d, v := range res.DeviceLoads {
		loads[d] = float64(v)
		labels[d] = fmt.Sprintf("gpu %d", d)
	}
	viz.BarChart(os.Stdout, labels, loads, 40, " tok")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "laer-plan:", err)
	os.Exit(1)
}
