// laer-plan solves one expert re-layout problem: it generates (or loads) a
// routing matrix, runs the paper's planner (replica allocation, expert
// relocation, lite routing) and prints the layout and the balance
// improvement.
//
// Usage:
//
//	laer-plan -experts 8 -capacity 2 -tokens 16384 -seed 3
//	laer-plan -trace routing.jsonl       # first record of a recorded trace
package main

import (
	"flag"
	"fmt"
	"os"

	"laermoe"
	"laermoe/internal/trace"
	"laermoe/internal/viz"
)

func main() {
	var (
		experts   = flag.Int("experts", 8, "number of experts")
		capacity  = flag.Int("capacity", 2, "experts restored per device (C)")
		tokens    = flag.Int("tokens", 16384, "tokens per device")
		topk      = flag.Int("topk", 2, "experts per token")
		nodes     = flag.Int("nodes", 4, "cluster nodes")
		gpus      = flag.Int("gpus", 8, "GPUs per node")
		aux       = flag.Float64("aux", 0, "auxiliary loss weight")
		seed      = flag.Int64("seed", 1, "random seed")
		traceFile = flag.String("trace", "", "optional recorded trace (JSON lines); uses its first record")
		epsilon   = flag.Int("epsilon", 2, "solver candidate set size |ε|")
	)
	flag.Parse()

	// Flag validation fails fast with the usage exit code 2 (runtime
	// failures keep exit 1), matching laer-sim and laer-serve.
	if err := validateFlags(*experts, *capacity, *tokens, *topk, *nodes, *gpus, *epsilon, *traceFile != ""); err != nil {
		fmt.Fprintln(os.Stderr, "laer-plan:", err)
		fmt.Fprintln(os.Stderr, "run 'laer-plan -h' for usage")
		os.Exit(2)
	}

	cluster, err := laermoe.NewCluster(laermoe.ClusterSpec{Nodes: *nodes, GPUsPerNode: *gpus})
	if err != nil {
		fatal(err)
	}

	var routing [][]int
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		rec, err := trace.NewReader(f).Next()
		if err != nil {
			fatal(fmt.Errorf("reading %s: %w", *traceFile, err))
		}
		routing = rec.R
	} else {
		routing, err = laermoe.GenerateRouting(cluster, *experts, *tokens, *topk, *aux, *seed)
		if err != nil {
			fatal(err)
		}
	}

	res, err := laermoe.PlanLayout(laermoe.PlanRequest{
		Cluster: cluster, Routing: routing, Capacity: *capacity,
		Epsilon: *epsilon, Seed: *seed,
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("cluster: %s\n", cluster)
	fmt.Printf("imbalance: static EP %.3f -> planned %.3f (1.0 = perfect)\n\n",
		res.ImbalanceBefore, res.ImbalanceAfter)

	rows := [][]string{{"expert", "replicas", "devices"}}
	for j, reps := range res.Replicas {
		devs := ""
		for d, v := range res.Layout[j] {
			for k := 0; k < v; k++ {
				if devs != "" {
					devs += ","
				}
				devs += fmt.Sprintf("%d", d)
			}
		}
		rows = append(rows, []string{fmt.Sprintf("%d", j), fmt.Sprintf("%d", reps), devs})
	}
	viz.Table(os.Stdout, rows)

	fmt.Println("\nper-device load under lite routing:")
	loads := make([]float64, len(res.DeviceLoads))
	labels := make([]string, len(res.DeviceLoads))
	for d, v := range res.DeviceLoads {
		loads[d] = float64(v)
		labels[d] = fmt.Sprintf("gpu %d", d)
	}
	viz.BarChart(os.Stdout, labels, loads, 40, " tok")
}

// validateFlags rejects dimension combinations the generator or the
// planner would otherwise only reject (with exit 1, or a panic for the
// degenerate shapes) after the cluster was already built. When a recorded
// trace supplies the routing, the generator dimensions (-experts, -tokens,
// -topk) are ignored and therefore not checked.
func validateFlags(experts, capacity, tokens, topk, nodes, gpus, epsilon int, fromTrace bool) error {
	if nodes < 1 || gpus < 1 {
		return fmt.Errorf("-nodes %d and -gpus %d must both be at least 1", nodes, gpus)
	}
	if capacity < 1 {
		return fmt.Errorf("-capacity %d must be at least 1", capacity)
	}
	if epsilon < 1 {
		return fmt.Errorf("-epsilon %d must be at least 1", epsilon)
	}
	if fromTrace {
		return nil
	}
	if experts < 1 {
		return fmt.Errorf("-experts %d must be at least 1", experts)
	}
	if tokens < 1 {
		return fmt.Errorf("-tokens %d must be at least 1", tokens)
	}
	if topk < 1 || topk > experts {
		return fmt.Errorf("-topk %d out of range [1, %d experts]", topk, experts)
	}
	if nodes*gpus*capacity < experts {
		return fmt.Errorf("%d experts do not fit %d GPUs x capacity %d (raise -capacity or shrink -experts)",
			experts, nodes*gpus, capacity)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "laer-plan:", err)
	os.Exit(1)
}
