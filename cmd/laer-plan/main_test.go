package main

import (
	"strings"
	"testing"
)

// Regression tests for the fail-fast flag validation: these shapes used to
// surface as exit-1 errors (or solver failures) only after the cluster was
// built and the routing generated; they now exit 2 with a usage message
// before any work runs.
func TestValidateFlags(t *testing.T) {
	type f struct {
		experts, capacity, tokens, topk, nodes, gpus, epsilon int
		fromTrace                                             bool
	}
	def := f{experts: 8, capacity: 2, tokens: 16384, topk: 2, nodes: 4, gpus: 8, epsilon: 2}
	ok := func(mut func(*f)) {
		t.Helper()
		c := def
		mut(&c)
		if err := validateFlags(c.experts, c.capacity, c.tokens, c.topk, c.nodes, c.gpus, c.epsilon, c.fromTrace); err != nil {
			t.Errorf("valid flags rejected: %v", err)
		}
	}
	bad := func(wantSub string, mut func(*f)) {
		t.Helper()
		c := def
		mut(&c)
		err := validateFlags(c.experts, c.capacity, c.tokens, c.topk, c.nodes, c.gpus, c.epsilon, c.fromTrace)
		if err == nil {
			t.Errorf("invalid flags accepted (want error containing %q)", wantSub)
			return
		}
		if !strings.Contains(err.Error(), wantSub) {
			t.Errorf("error %q does not mention %q", err, wantSub)
		}
	}

	ok(func(*f) {})
	bad("-nodes", func(c *f) { c.nodes = 0 })
	bad("-nodes", func(c *f) { c.gpus = -1 })
	bad("-experts", func(c *f) { c.experts = 0 })
	bad("-capacity", func(c *f) { c.capacity = 0 })
	bad("-tokens", func(c *f) { c.tokens = -5 })
	bad("-topk", func(c *f) { c.topk = 0 })
	bad("-topk", func(c *f) { c.topk = 9 })
	bad("-epsilon", func(c *f) { c.epsilon = 0 })
	// The expert pool must fit the cluster's restore slots.
	bad("do not fit", func(c *f) { c.experts = 512 })
	ok(func(c *f) { c.experts = 64; c.capacity = 2 })

	// A recorded trace supplies the routing: generator dimensions are
	// ignored, the solver knobs still apply.
	ok(func(c *f) { c.fromTrace = true; c.experts, c.tokens, c.topk = 0, 0, 0 })
	bad("-capacity", func(c *f) { c.fromTrace = true; c.capacity = 0 })
	bad("-epsilon", func(c *f) { c.fromTrace = true; c.epsilon = -1 })
}
