package main

import (
	"io"
	"log"
	"testing"
	"time"
)

func TestValidateFlags(t *testing.T) {
	base := config{
		sessions: 4, epochs: 2, itersPerEpoch: 4, tokensPerDevice: 256,
		model: "mixtral-8x7b-e8k2", policy: "warm", drift: "migration",
		workload: "training", arrival: "diurnal",
	}
	if err := base.validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*config)
	}{
		{"no sessions", func(c *config) { c.sessions = 0 }},
		{"no epochs", func(c *config) { c.epochs = 0 }},
		{"one-iteration horizon", func(c *config) { c.itersPerEpoch = 1 }},
		{"zero tokens", func(c *config) { c.tokensPerDevice = 0 }},
		{"negative parallelism", func(c *config) { c.parallelism = -1 }},
		{"negative SLO", func(c *config) { c.sloP99 = -time.Second }},
		{"journal with remote addr", func(c *config) { c.addr = "localhost:1"; c.journalDir = "jnl" }},
		{"unknown policy", func(c *config) { c.policy = "oracle" }},
		{"unknown workload", func(c *config) { c.workload = "batch" }},
		{"unknown arrival", func(c *config) { c.arrival = "tsunami" }},
		{"stationary inference", func(c *config) { c.workload = "inference"; c.stationary = true }},
	}
	for _, tc := range cases {
		cfg := base
		tc.mutate(&cfg)
		if err := cfg.validate(); err == nil {
			t.Errorf("%s: config accepted, want error", tc.name)
		}
	}
}

// TestRunSmall drives a miniature benchmark end to end — self-hosted
// daemon, shared stream, concurrent sessions, journal-replay restart —
// and checks the report adds up.
func TestRunSmall(t *testing.T) {
	cfg := config{
		sessions: 4, epochs: 2, itersPerEpoch: 4, tokensPerDevice: 256,
		model: "mixtral-8x7b-e8k2", policy: "warm", drift: "migration",
		workload: "training", arrival: "diurnal",
		seed: 7, journalDir: t.TempDir(), sloP99: time.Minute,
	}
	rep, err := run(cfg, log.New(io.Discard, "", 0))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Observes != cfg.sessions*cfg.epochs {
		t.Fatalf("report counts %d observes, want %d", rep.Observes, cfg.sessions*cfg.epochs)
	}
	if rep.ObserveP50Millis <= 0 || rep.ObserveP99Millis < rep.ObserveP50Millis {
		t.Fatalf("implausible latency report: p50 %gms p99 %gms", rep.ObserveP50Millis, rep.ObserveP99Millis)
	}
	if rep.ReplaySessions != cfg.sessions {
		t.Fatalf("replay restored %d sessions, want %d", rep.ReplaySessions, cfg.sessions)
	}
	if rep.ReplaySeconds <= 0 {
		t.Fatalf("replay restart took %gs", rep.ReplaySeconds)
	}
	if !rep.SLOOK {
		t.Fatal("a one-minute SLO budget was breached by a 4-session run")
	}
	// The drift-delta fast path must engage: every session's first epoch
	// solves cold (full), the second through the tracker (incremental).
	if rep.IncrementalSolves == 0 {
		t.Error("report counts no incremental solves across a 2-epoch fleet")
	}
	if rep.FullSolves == 0 {
		t.Error("report counts no full solves (the cold start must take the full path)")
	}
}

// TestSLOGateRequiresFastPath: with a p99 budget set, a replanning fleet
// that never reports an incremental solve fails the gate even when the
// latency is fine — the SLO it certifies is the fast path's.
func TestSLOGateRequiresFastPath(t *testing.T) {
	cfg := config{
		sessions: 2, epochs: 2, itersPerEpoch: 4, tokensPerDevice: 256,
		model: "mixtral-8x7b-e8k2", policy: "static", drift: "migration",
		workload: "training", arrival: "diurnal",
		seed: 7, sloP99: time.Minute,
	}
	rep, err := run(cfg, log.New(io.Discard, "", 0))
	if err != nil {
		t.Fatal(err)
	}
	// The static policy never replans, so the fast-path assertion does not
	// apply and the gate passes on latency alone.
	if !rep.SLOOK {
		t.Error("static-policy run failed the SLO gate")
	}
	if rep.IncrementalSolves != 0 {
		t.Errorf("static-policy run reported %d incremental solves", rep.IncrementalSolves)
	}
}

// TestRunInference drives the inference-workload leg: the shared stream
// is decode-request traffic under the configured arrival shape, and the
// dispatch-time llep baseline (which never replans) is exempt from the
// SLO gate's fast-path assertion via the policy registry.
func TestRunInference(t *testing.T) {
	cfg := config{
		sessions: 2, epochs: 2, itersPerEpoch: 4, tokensPerDevice: 256,
		model: "mixtral-8x7b-e8k2", policy: "llep", drift: "migration",
		workload: "inference", arrival: "bursty",
		seed: 7, sloP99: time.Minute,
	}
	rep, err := run(cfg, log.New(io.Discard, "", 0))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Observes != cfg.sessions*cfg.epochs {
		t.Fatalf("report counts %d observes, want %d", rep.Observes, cfg.sessions*cfg.epochs)
	}
	if !rep.SLOOK {
		t.Error("inference llep run failed the SLO gate (dispatch-time policies must be exempt from the fast-path assertion)")
	}
}
