// laer-bench is the load harness for the laer-serve planning daemon: it
// drives N concurrent drifting planning sessions — each posting per-epoch
// expert-load observations and consuming re-layout decisions — and
// reports observe-latency percentiles, planning throughput and, with
// journaling enabled, the cost of a full journal-replay restart.
//
//	laer-bench                           # self-host a daemon, 64 sessions x 5 epochs
//	laer-bench -quick                    # CI-sized: 500 sessions x 3 epochs, small tokens
//	laer-bench -fleet1k -slo-p99 10ms    # scale scenario: 1000 paced sessions, p99 gate
//	laer-bench -fleet1k -herd -delta -stationary  # simultaneous 1k herd on the sparse wire
//	laer-bench -addr HOST:PORT           # drive an already-running laer-serve
//	laer-bench -journal-dir d -quick \
//	           -slo-p99 500ms -report r.json
//
// Every session replays the same pre-generated observation stream (trace
// generation at production token counts costs far more than the solves
// being measured; one shared, pre-marshaled stream keeps the harness out
// of its own way). The stream is drifting by default; -stationary models
// a converged fleet whose routing moves only a couple of tokens per layer
// per epoch — the regime the sparse wire protocol exists for. With
// -delta, every epoch after the first is posted as routing_delta against
// the session's retained matrix instead of the dense routing; with
// -herd, sessions fire each epoch simultaneously instead of staggered
// across the interval, measuring the daemon under the synchronized
// thundering herd. With -slo-p99 the run exits 1 when the observe p99
// exceeds the budget, when a replanning fleet reports zero incremental
// solves (the drift-delta fast path must carry the steady state), or
// when a -delta run lands zero delta observes — the CI daemon-smoke
// gate. Self-hosted runs always journal (into a temp directory unless
// -journal-dir names one) and end by restarting the daemon against the
// journal and timing the replay back to full session state.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sync"
	"time"

	"laermoe/internal/serve"
	"laermoe/internal/stats"
	"laermoe/internal/trace"
	"laermoe/internal/training"
	sessionspec "laermoe/session"
)

type config struct {
	addr            string
	sessions        int
	epochs          int
	model           string
	policy          string
	workload        string
	arrival         string
	drift           string
	seed            int64
	parallelism     int
	itersPerEpoch   int
	tokensPerDevice int
	epochInterval   time.Duration
	journalDir      string
	reportPath      string
	sloP99          time.Duration
	herd            bool
	delta           bool
	stationary      bool
}

// report is the machine-readable result, written to -report as JSON.
type report struct {
	Sessions          int     `json:"sessions"`
	Epochs            int     `json:"epochs"`
	Observes          int     `json:"observes"`
	ElapsedSeconds    float64 `json:"elapsed_s"`
	ObserveP50Millis  float64 `json:"observe_p50_ms"`
	ObserveP99Millis  float64 `json:"observe_p99_ms"`
	ObservesPerSecond float64 `json:"observes_per_second"`
	Cores             int     `json:"cores"`
	SessionsPerCore   float64 `json:"sessions_per_core"`
	EpochIntervalSecs float64 `json:"epoch_interval_s,omitempty"`
	Herd              bool    `json:"herd,omitempty"`
	Stationary        bool    `json:"stationary,omitempty"`

	// Wire accounting: the bytes actually posted across every observe,
	// against what the same epochs would have cost dense. In -delta mode
	// the reduction is the sparse wire protocol's payoff; without it the
	// two are equal and the reduction is 1.
	DeltaObserves       int     `json:"delta_observes"`
	ObservePayloadBytes int64   `json:"observe_payload_bytes"`
	DensePayloadBytes   int64   `json:"dense_payload_bytes"`
	PayloadReduction    float64 `json:"payload_reduction"`
	// SteadyPayloadReduction is the per-epoch ratio with the mandatory
	// dense first epoch excluded: what each additional epoch costs on the
	// sparse wire versus dense. A short run's whole-run PayloadReduction
	// is dominated by epoch zero; this is the steady-state number.
	SteadyPayloadReduction float64 `json:"steady_payload_reduction,omitempty"`

	// IncrementalSolves and FullSolves total the per-layer solve-path
	// counters across every observe response: how often the daemon's warm
	// solver ran through the drift tracker's amortized path versus a full
	// matrix re-score. The SLO gate requires the fast path to engage.
	IncrementalSolves int `json:"incremental_solves"`
	FullSolves        int `json:"full_solves"`

	// Replay fields are set in self-host mode with -journal-dir: the
	// daemon is restarted against its journal and the boot replay timed.
	ReplaySessions int     `json:"replay_sessions,omitempty"`
	ReplaySeconds  float64 `json:"replay_seconds,omitempty"`

	SLOP99Millis float64 `json:"slo_p99_ms,omitempty"`
	SLOOK        bool    `json:"slo_ok"`
}

func main() { os.Exit(realMain()) }

// realMain carries main's body so deferred cleanups (the self-hosted
// temp journal directory) run before the process exits — os.Exit in main
// proper would leak them on every gate-failure path.
func realMain() int {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "", "daemon address (empty = self-host an in-process daemon)")
	flag.IntVar(&cfg.sessions, "sessions", 64, "concurrent planning sessions")
	flag.IntVar(&cfg.epochs, "epochs", 5, "epochs each session observes")
	flag.StringVar(&cfg.model, "model", "mixtral-8x7b-e8k2", "model configuration")
	flag.StringVar(&cfg.policy, "policy", "warm", "replan policy the sessions run")
	flag.StringVar(&cfg.workload, "workload", "training", "session workload: training (drifting epoch stream) or inference (decode-request traffic)")
	flag.StringVar(&cfg.arrival, "arrival", "diurnal", "inference arrival shape (diurnal or bursty; ignored for training)")
	flag.StringVar(&cfg.drift, "drift", "migration", "epoch-boundary drift model")
	flag.Int64Var(&cfg.seed, "seed", 42, "random seed (sessions and trace stream)")
	flag.IntVar(&cfg.parallelism, "parallelism", 0, "self-hosted daemon's solve worker budget (0 = all CPUs)")
	flag.IntVar(&cfg.itersPerEpoch, "epoch-iters", 4, "planning horizon (iterations per epoch)")
	flag.IntVar(&cfg.tokensPerDevice, "tokens-per-device", 2048, "tokens per device in the synthetic observations")
	flag.DurationVar(&cfg.epochInterval, "epoch-interval", 0, "pace each session to one observe per interval, starts staggered across sessions (0 = flat out)")
	flag.StringVar(&cfg.journalDir, "journal-dir", "", "self-hosted daemon's journal directory (timed replay restart at the end)")
	flag.StringVar(&cfg.reportPath, "report", "", "write the machine-readable report JSON here")
	flag.DurationVar(&cfg.sloP99, "slo-p99", 0, "fail (exit 1) if observe p99 exceeds this (0 = no gate)")
	flag.BoolVar(&cfg.herd, "herd", false, "fire every session's epoch simultaneously instead of staggered across the interval")
	flag.BoolVar(&cfg.delta, "delta", false, "post epochs after the first as routing_delta against the session's retained matrix")
	flag.BoolVar(&cfg.stationary, "stationary", false, "converged-fleet stream: a couple of token moves per layer per epoch instead of drift")
	quick := flag.Bool("quick", false, "CI-sized run: 500 paced sessions x 3 epochs, 512 tokens per device")
	fleet1k := flag.Bool("fleet1k", false, "scale scenario: 1000 paced sessions x 3 epochs, 512 tokens per device")
	flag.Parse()
	if *quick {
		cfg.sessions, cfg.epochs, cfg.tokensPerDevice = 500, 3, 512
		cfg.epochInterval = 5 * time.Second
	}
	if *fleet1k {
		cfg.sessions, cfg.epochs, cfg.tokensPerDevice = 1000, 3, 512
		cfg.epochInterval = 5 * time.Second
	}
	if err := cfg.validate(); err != nil {
		fmt.Fprintln(os.Stderr, "laer-bench:", err)
		fmt.Fprintln(os.Stderr, "run 'laer-bench -h' for usage")
		return 2
	}
	// Self-hosted runs always journal, so the replay-restart leg is part
	// of every run; an unset -journal-dir gets a temp directory, removed
	// on every exit path (including gate failures).
	if cfg.addr == "" && cfg.journalDir == "" {
		dir, err := os.MkdirTemp("", "laer-bench-jnl-")
		if err != nil {
			fmt.Fprintln(os.Stderr, "laer-bench:", err)
			return 1
		}
		defer os.RemoveAll(dir)
		cfg.journalDir = dir
	}

	rep, err := run(cfg, log.New(os.Stdout, "", 0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "laer-bench:", err)
		return 1
	}
	if cfg.reportPath != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "laer-bench:", err)
			return 1
		}
		if err := os.WriteFile(cfg.reportPath, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "laer-bench:", err)
			return 1
		}
	}
	if !rep.SLOOK {
		fmt.Fprintf(os.Stderr, "laer-bench: SLO BREACH: observe p99 %.1fms (budget %.1fms), %d incremental / %d full solves\n",
			rep.ObserveP99Millis, rep.SLOP99Millis, rep.IncrementalSolves, rep.FullSolves)
		return 1
	}
	return 0
}

func (c config) validate() error {
	if _, err := training.ResolvePolicy(training.ReplanPolicy(c.policy)); err != nil {
		return fmt.Errorf("-policy: %w", err)
	}
	if _, err := training.ResolveWorkload(training.Workload(c.workload)); err != nil {
		return fmt.Errorf("-workload: %w", err)
	}
	if err := trace.ArrivalShape(c.arrival).Validate(); err != nil {
		return fmt.Errorf("-arrival: %w", err)
	}
	if c.sessions < 1 {
		return fmt.Errorf("-sessions %d must be at least 1", c.sessions)
	}
	if c.epochs < 1 {
		return fmt.Errorf("-epochs %d must be at least 1", c.epochs)
	}
	if c.itersPerEpoch < 2 {
		return fmt.Errorf("-epoch-iters %d must be at least 2", c.itersPerEpoch)
	}
	if c.tokensPerDevice < 1 {
		return fmt.Errorf("-tokens-per-device %d must be positive", c.tokensPerDevice)
	}
	if c.parallelism < 0 {
		return fmt.Errorf("-parallelism %d must not be negative", c.parallelism)
	}
	if c.sloP99 < 0 {
		return fmt.Errorf("-slo-p99 %s must not be negative", c.sloP99)
	}
	if c.epochInterval < 0 {
		return fmt.Errorf("-epoch-interval %s must not be negative", c.epochInterval)
	}
	if c.addr != "" && c.journalDir != "" {
		return fmt.Errorf("-journal-dir only applies to the self-hosted daemon (drop -addr)")
	}
	if c.delta && c.epochs < 2 {
		return fmt.Errorf("-delta needs at least 2 epochs (the first is always posted dense)")
	}
	if c.stationary && c.workload == string(training.WorkloadInference) {
		return fmt.Errorf("-stationary models a converged training fleet; the inference stream's movement comes from -arrival")
	}
	return nil
}

// run executes the benchmark and returns the report.
func run(cfg config, out *log.Logger) (*report, error) {
	// Self-host unless pointed at a live daemon.
	var daemon *serve.Server
	addr := cfg.addr
	if addr == "" {
		s, err := serve.New(serve.Options{
			Addr:        "127.0.0.1:0",
			Parallelism: cfg.parallelism,
			MaxSessions: cfg.sessions + 4,
			JournalDir:  cfg.journalDir,
		})
		if err != nil {
			return nil, err
		}
		if err := s.Start(); err != nil {
			return nil, err
		}
		daemon = s
		addr = s.Addr()
		out.Printf("self-hosted daemon on %s", addr)
	}
	base := "http://" + addr
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        cfg.sessions + 8,
		MaxIdleConnsPerHost: cfg.sessions + 8,
	}}

	// One probe session resolves the cluster shape, then the shared
	// observation stream is generated and marshaled once — every session
	// replays the same drifting epochs, so the harness spends its time in
	// the daemon's solves, not in trace synthesis.
	spec := serve.SessionSpec{Spec: sessionspec.Spec{
		Model: cfg.model, Policy: cfg.policy,
		Workload:             cfg.workload,
		IterationsPerEpoch:   cfg.itersPerEpoch,
		ForceTokensPerDevice: cfg.tokensPerDevice,
		Seed:                 cfg.seed,
	}}
	if cfg.workload == string(training.WorkloadInference) {
		spec.Arrival = cfg.arrival
	}
	probe, err := openSession(client, base, spec)
	if err != nil {
		return nil, err
	}
	bodies, err := observationBodies(probe, cfg)
	if err != nil {
		return nil, err
	}
	workload := cfg.workload
	if workload == string(training.WorkloadInference) {
		workload += "/" + cfg.arrival
	}
	out.Printf("%d sessions x %d epochs on %s (%d layers x %d experts, %d tokens/device, policy %s, workload %s)",
		cfg.sessions, cfg.epochs, probe.Model, probe.Layers, probe.Experts, probe.TokensPerDevice, cfg.policy, workload)

	// Open the fleet (the probe is session one).
	ids := make([]string, cfg.sessions)
	ids[0] = probe.ID
	var openErr error
	var openMu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, 16)
	for i := 1; i < cfg.sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			info, err := openSession(client, base, spec)
			openMu.Lock()
			defer openMu.Unlock()
			if err != nil && openErr == nil {
				openErr = err
				return
			}
			if err == nil {
				ids[i] = info.ID
			}
		}(i)
	}
	wg.Wait()
	if openErr != nil {
		return nil, fmt.Errorf("opening sessions: %w", openErr)
	}

	// Drive: one goroutine per session, all epochs in order, wall-clock
	// around each observe. With -epoch-interval each session observes on
	// its own schedule — starts staggered uniformly across the interval
	// (so the harness measures whether the daemon keeps up with the
	// offered load), or, with -herd, all at once (so it measures the
	// queueing delay of a synchronized thundering herd). In -delta mode
	// every epoch after the first posts the pre-marshaled sparse body.
	lats := make([][]float64, cfg.sessions)
	errs := make([]error, cfg.sessions)
	incSolves := make([]int, cfg.sessions)
	fullSolves := make([]int, cfg.sessions)
	deltaObs := make([]int, cfg.sessions)
	payload := make([]int64, cfg.sessions)
	start := time.Now()
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			offset := time.Duration(i) * cfg.epochInterval / time.Duration(cfg.sessions)
			if cfg.herd {
				offset = 0
			}
			lat := make([]float64, 0, cfg.epochs)
			for e := 0; e < cfg.epochs; e++ {
				if cfg.epochInterval > 0 {
					due := start.Add(offset + time.Duration(e)*cfg.epochInterval)
					if d := time.Until(due); d > 0 {
						time.Sleep(d)
					}
				}
				body := bodies.dense[e]
				if cfg.delta && e > 0 {
					body = bodies.delta[e]
					deltaObs[i]++
				}
				payload[i] += int64(len(body))
				t0 := time.Now()
				inc, full, err := postObserve(client, base, ids[i], body)
				if err != nil {
					errs[i] = fmt.Errorf("session %s epoch %d: %w", ids[i], e, err)
					return
				}
				lat = append(lat, time.Since(t0).Seconds())
				incSolves[i] += inc
				fullSolves[i] += full
			}
			lats[i] = lat
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	all := make([]float64, 0, cfg.sessions*cfg.epochs)
	for _, lat := range lats {
		all = append(all, lat...)
	}
	totalInc, totalFull, totalDelta := 0, 0, 0
	var totalPayload, densePayload int64
	for i := range incSolves {
		totalInc += incSolves[i]
		totalFull += fullSolves[i]
		totalDelta += deltaObs[i]
		totalPayload += payload[i]
	}
	for e := 0; e < cfg.epochs; e++ {
		densePayload += int64(cfg.sessions * len(bodies.dense[e]))
	}
	cores := runtime.NumCPU()
	rep := &report{
		Sessions:            cfg.sessions,
		Epochs:              cfg.epochs,
		Observes:            len(all),
		ElapsedSeconds:      elapsed.Seconds(),
		ObserveP50Millis:    1e3 * stats.Percentile(all, 50),
		ObserveP99Millis:    1e3 * stats.Percentile(all, 99),
		ObservesPerSecond:   float64(len(all)) / elapsed.Seconds(),
		IncrementalSolves:   totalInc,
		FullSolves:          totalFull,
		Cores:               cores,
		SessionsPerCore:     float64(cfg.sessions) / float64(cores),
		EpochIntervalSecs:   cfg.epochInterval.Seconds(),
		Herd:                cfg.herd,
		Stationary:          cfg.stationary,
		DeltaObserves:       totalDelta,
		ObservePayloadBytes: totalPayload,
		DensePayloadBytes:   densePayload,
		PayloadReduction:    float64(densePayload) / float64(totalPayload),
		SLOOK:               true,
	}
	out.Printf("%d observes in %s: p50 %.1fms p99 %.1fms, %.1f observes/s (%d sessions on %d cores, %.1f/core), %d incremental / %d full solves",
		rep.Observes, elapsed.Round(time.Millisecond), rep.ObserveP50Millis, rep.ObserveP99Millis,
		rep.ObservesPerSecond, rep.Sessions, rep.Cores, rep.SessionsPerCore, rep.IncrementalSolves, rep.FullSolves)
	if cfg.delta {
		var denseSteady, deltaSteady int64
		for e := 1; e < cfg.epochs; e++ {
			denseSteady += int64(len(bodies.dense[e]))
			deltaSteady += int64(len(bodies.delta[e]))
		}
		rep.SteadyPayloadReduction = float64(denseSteady) / float64(deltaSteady)
	}
	out.Printf("wire: %d delta observes, %s posted vs %s dense (%.1fx payload reduction, %.1fx steady-state)",
		rep.DeltaObserves, formatBytes(totalPayload), formatBytes(densePayload), rep.PayloadReduction, rep.SteadyPayloadReduction)

	// Recovery leg: restart the self-hosted daemon against its journal
	// and time the replay back to full session state.
	if daemon != nil {
		if err := shutdown(daemon); err != nil {
			return nil, fmt.Errorf("draining daemon: %w", err)
		}
		if cfg.journalDir != "" {
			t0 := time.Now()
			s2, err := serve.New(serve.Options{
				Addr:        "127.0.0.1:0",
				Parallelism: cfg.parallelism,
				MaxSessions: cfg.sessions + 4,
				JournalDir:  cfg.journalDir,
			})
			if err != nil {
				return nil, fmt.Errorf("replay restart: %w", err)
			}
			rep.ReplaySeconds = time.Since(t0).Seconds()
			if err := s2.Start(); err != nil {
				return nil, err
			}
			restored, err := countSessions(s2.Addr(), cfg.epochs)
			if err != nil {
				return nil, err
			}
			rep.ReplaySessions = restored
			if err := shutdown(s2); err != nil {
				return nil, fmt.Errorf("draining replayed daemon: %w", err)
			}
			if restored != cfg.sessions {
				return nil, fmt.Errorf("replay restored %d of %d sessions", restored, cfg.sessions)
			}
			out.Printf("journal replay: %d sessions back in %.2fs", restored, rep.ReplaySeconds)
		}
	}

	if cfg.sloP99 > 0 {
		rep.SLOP99Millis = 1e3 * cfg.sloP99.Seconds()
		rep.SLOOK = rep.ObserveP99Millis <= rep.SLOP99Millis
		// The gate also asserts the drift-delta fast path engaged: any
		// replanning fleet observing more than one epoch must report
		// tracker-amortized solves, or the p99 it measured is the slow
		// path's. Whether the policy replans comes from the registry, so
		// dispatch-time baselines (static, llep, score-balance) are exempt
		// without this gate naming them.
		replans := false
		if pspec, err := training.ResolvePolicy(training.ReplanPolicy(cfg.policy)); err == nil {
			replans = pspec.Replans
		}
		if cfg.epochs >= 2 && replans && rep.IncrementalSolves == 0 {
			rep.SLOOK = false
		}
		// And a -delta run that never actually posted a delta measured
		// the dense wire, not the sparse one.
		if cfg.delta && rep.DeltaObserves == 0 {
			rep.SLOOK = false
		}
	}
	return rep, nil
}

// observationSet is the shared, pre-marshaled epoch stream: every epoch
// in its dense wire form, plus (in -delta mode) the sparse form for
// every epoch after the first.
type observationSet struct {
	dense [][]byte
	delta [][]byte // delta[0] is nil: the first observe is always dense
}

// observationBodies pre-marshals one epoch stream shared by all
// sessions. One generator step per epoch suffices: the harness measures
// planning load, not engine byte-identity, and a single observation per
// epoch is exactly what the daemon solves on. The stream drifts through
// the generator's drift model by default; -stationary instead holds the
// fleet converged, moving only a couple of tokens per layer per epoch —
// the generator redraws its per-device noise every step, so consecutive
// dense steps differ almost everywhere and would hide the sparse wire's
// payoff.
func observationBodies(info *serve.SessionInfo, cfg config) (*observationSet, error) {
	var rows [][][][]int
	var err error
	if cfg.workload == string(training.WorkloadInference) {
		rows, err = inferenceRows(info, cfg)
	} else {
		rows, err = trainingRows(info, cfg)
	}
	if err != nil {
		return nil, err
	}

	set := &observationSet{
		dense: make([][]byte, cfg.epochs),
		delta: make([][]byte, cfg.epochs),
	}
	for e := 0; e < cfg.epochs; e++ {
		b, err := json.Marshal(serve.ObserveRequest{Routing: rows[e]})
		if err != nil {
			return nil, err
		}
		set.dense[e] = b
		if cfg.delta && e > 0 {
			deltas := make([]*trace.WireDelta, len(rows[e]))
			for l := range rows[e] {
				deltas[l] = trace.WireDiff(matrixOf(rows[e-1][l]), rows[e][l])
			}
			db, err := json.Marshal(serve.ObserveRequest{Epoch: e, RoutingDelta: deltas})
			if err != nil {
				return nil, err
			}
			set.delta[e] = db
		}
	}
	return set, nil
}

// trainingRows generates the training-workload epoch stream: the online
// engine's observation generator, drifting (or -stationary perturbed)
// between epochs.
func trainingRows(info *serve.SessionInfo, cfg config) ([][][][]int, error) {
	gen, err := training.ObservationGenerator(trace.GeneratorConfig{
		Devices: info.Devices, Experts: info.Experts, Layers: info.Layers,
		TokensPerDevice: info.TokensPerDevice, TopK: info.TopK,
		Seed: cfg.seed,
	})
	if err != nil {
		return nil, err
	}
	rows := make([][][][]int, cfg.epochs)
	for e := 0; e < cfg.epochs; e++ {
		if cfg.stationary && e > 0 {
			rows[e] = copyRows(rows[e-1])
			perturbRows(rows[e], cfg.seed+int64(e))
			continue
		}
		if e > 0 {
			if err := gen.ApplyDrift(trace.DriftConfig{Model: trace.DriftModel(cfg.drift)}); err != nil {
				return nil, err
			}
		}
		routing := gen.Step()
		obs := make([][][]int, len(routing))
		for l, m := range routing {
			obs[l] = m.R
		}
		rows[e] = copyRows(obs)
	}
	return rows, nil
}

// inferenceRows generates the inference-workload epoch stream: each epoch
// is the routing one step of decode-request traffic realizes under the
// configured arrival shape, so the daemon plans on the same matrices the
// online engine's inference workload dispatches.
func inferenceRows(info *serve.SessionInfo, cfg config) ([][][][]int, error) {
	gen, err := trace.NewRequestGenerator(trace.RequestConfig{
		GeneratorConfig: trace.GeneratorConfig{
			Devices: info.Devices, Experts: info.Experts, Layers: info.Layers,
			TokensPerDevice: info.TokensPerDevice, TopK: info.TopK,
			Seed: cfg.seed,
		},
		Arrival: trace.ArrivalShape(cfg.arrival),
	})
	if err != nil {
		return nil, err
	}
	rows := make([][][][]int, cfg.epochs)
	for e := 0; e < cfg.epochs; e++ {
		routing, _ := gen.Step()
		obs := make([][][]int, len(routing))
		for l, m := range routing {
			obs[l] = m.R
		}
		rows[e] = copyRows(obs)
	}
	return rows, nil
}

// copyRows deep-copies one epoch's observation so stationary epochs can
// be derived from their predecessor (and so no epoch aliases the
// generator's live matrices).
func copyRows(obs [][][]int) [][][]int {
	out := make([][][]int, len(obs))
	for l, rows := range obs {
		out[l] = make([][]int, len(rows))
		for d, row := range rows {
			out[l][d] = append([]int(nil), row...)
		}
	}
	return out
}

// perturbRows applies the stationary regime's epoch-to-epoch movement:
// two token-conserving moves per layer (one token of one expert hops to
// another device), seeded so every run is reproducible.
func perturbRows(obs [][][]int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for _, rows := range obs {
		devices, experts := len(rows), len(rows[0])
		for moved := 0; moved < 2; {
			d, x := rng.Intn(devices), rng.Intn(experts)
			if rows[d][x] == 0 {
				continue
			}
			d2 := rng.Intn(devices)
			if d2 == d {
				d2 = (d2 + 1) % devices
			}
			rows[d][x]--
			rows[d2][x]++
			moved++
		}
	}
}

// matrixOf wraps one layer's rows in a RoutingMatrix for diffing.
func matrixOf(rows [][]int) *trace.RoutingMatrix {
	m := trace.NewRoutingMatrix(len(rows), len(rows[0]))
	for d, row := range rows {
		copy(m.R[d], row)
	}
	return m
}

// formatBytes renders a byte count human-readably for the run log.
func formatBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

func openSession(client *http.Client, base string, spec serve.SessionSpec) (*serve.SessionInfo, error) {
	b, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	resp, err := client.Post(base+"/v1/sessions", "application/json", bytes.NewReader(b))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusCreated {
		return nil, fmt.Errorf("opening session: status %d: %s", resp.StatusCode, data)
	}
	var info serve.SessionInfo
	if err := json.Unmarshal(data, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// postObserve posts one epoch's observation and returns the solve-path
// counters from the decision summary.
func postObserve(client *http.Client, base, id string, body []byte) (incSolves, fullSolves int, err error) {
	resp, err := client.Post(base+"/v1/sessions/"+id+"/observe", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		return 0, 0, fmt.Errorf("observe status %d: %s", resp.StatusCode, data)
	}
	var dec struct {
		Summary struct {
			IncrementalSolves int `json:"incremental_solves"`
			FullSolves        int `json:"full_solves"`
		} `json:"summary"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dec); err != nil {
		return 0, 0, fmt.Errorf("decoding observe response: %w", err)
	}
	return dec.Summary.IncrementalSolves, dec.Summary.FullSolves, nil
}

// countSessions verifies the restored fleet: every session present and at
// the expected epoch.
func countSessions(addr string, wantEpochs int) (int, error) {
	resp, err := http.Get("http://" + addr + "/v1/sessions")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var list struct {
		Sessions []serve.SessionInfo `json:"sessions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		return 0, err
	}
	for _, info := range list.Sessions {
		if info.Epochs != wantEpochs {
			return 0, fmt.Errorf("restored session %s is at epoch %d, want %d", info.ID, info.Epochs, wantEpochs)
		}
	}
	return len(list.Sessions), nil
}

func shutdown(s *serve.Server) error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	return s.Shutdown(ctx)
}
