package main

import (
	"strings"
	"testing"
)

// base is a valid classic-mode flag set; tests mutate one knob at a time.
func base() simFlags {
	return simFlags{
		model: "mixtral-8x7b-e8k2", systems: "laer,fsdp+ep",
		nodes: 4, gpus: 8, straggler: -1,
		iters: 12, warmup: 3,
		epochs: 0, epochIters: 6,
		policies: "warm", drift: "stabilizing", predictor: "trend",
		workload: "training", arrival: "diurnal",
	}
}

// Regression tests for the fail-fast flag validation: these combinations
// used to surface only deep inside the cluster setup or RunOnline after
// setup work (with exit code 1 instead of the usage code 2), or — for
// -warmup >= -iters — were silently absorbed by the metrics fallback,
// which folds warmup iterations back into the averages without warning.
func TestValidateFlags(t *testing.T) {
	ok := func(mut func(*simFlags)) {
		t.Helper()
		f := base()
		mut(&f)
		if err := validateFlags(f); err != nil {
			t.Errorf("valid flags rejected: %v", err)
		}
	}
	bad := func(wantSub string, mut func(*simFlags)) {
		t.Helper()
		f := base()
		mut(&f)
		err := validateFlags(f)
		if err == nil {
			t.Errorf("invalid flags accepted (want error containing %q)", wantSub)
			return
		}
		if !strings.Contains(err.Error(), wantSub) {
			t.Errorf("error %q does not mention %q", err, wantSub)
		}
	}

	// Classic mode defaults; online-only names are ignored there.
	ok(func(f *simFlags) { f.policies, f.drift, f.predictor = "whatever", "whatever", "whatever" })
	// Warmup must leave a measured window.
	bad("-warmup", func(f *simFlags) { f.warmup = 12 })
	bad("-warmup", func(f *simFlags) { f.warmup = 20 })
	bad("-iters", func(f *simFlags) { f.iters = 0 })
	bad("-warmup", func(f *simFlags) { f.warmup = -1 })
	ok(func(f *simFlags) { f.warmup = 11 })

	// Cluster shape and model resolve before any setup work.
	bad("-nodes", func(f *simFlags) { f.nodes = 0 })
	bad("-nodes", func(f *simFlags) { f.gpus = -8 })
	bad("unknown model", func(f *simFlags) { f.model = "gpt-17" })
	bad("-straggler", func(f *simFlags) { f.straggler = 32 })
	bad("-straggler", func(f *simFlags) { f.straggler = -2 })
	ok(func(f *simFlags) { f.straggler = 31 })

	// Classic mode validates the system list.
	bad("unknown system", func(f *simFlags) { f.systems = "laer,oracle" })
	bad("no system", func(f *simFlags) { f.systems = " , " })

	// Online mode.
	online := func(f *simFlags) {
		f.epochs = 5
		f.policies = "predictive,warm,scratch,static"
		f.drift, f.predictor = "migration", "trend"
	}
	ok(online)
	ok(func(f *simFlags) { online(f); f.policies, f.drift, f.predictor = " warm , static ", "none", "last" })
	bad("-epochs", func(f *simFlags) { f.epochs = -1 })
	bad("-epoch-iters", func(f *simFlags) { online(f); f.epochIters = 1 })
	bad("drift model", func(f *simFlags) { online(f); f.drift = "sideways" })
	bad("-drift-rate", func(f *simFlags) { online(f); f.driftRate = 1.5 })
	bad("-drift-rate", func(f *simFlags) { online(f); f.driftRate = -0.1 })
	bad("predictor", func(f *simFlags) { online(f); f.predictor = "oracle" })
	bad("replan policy", func(f *simFlags) { online(f); f.policies = "warm,oracle" })
	bad("no policy", func(f *simFlags) { online(f); f.policies = " , " })

	// Workload and arrival resolve through the registry; the inference
	// workload is online-only and incompatible with fault injection.
	inference := func(f *simFlags) { online(f); f.workload = "inference" }
	ok(inference)
	ok(func(f *simFlags) { inference(f); f.arrival = "bursty" })
	bad("-workload", func(f *simFlags) { f.workload = "inference" }) // classic mode
	bad("-workload", func(f *simFlags) { online(f); f.workload = "batch" })
	bad("-arrival", func(f *simFlags) { inference(f); f.arrival = "tsunami" })
	bad("-workload=inference", func(f *simFlags) { inference(f); f.elastic = true })
	bad("-workload=inference", func(f *simFlags) { inference(f); f.faultSchedule = "2:fail:1" })

	// -force-tokens must not silently read as unset.
	bad("-force-tokens", func(f *simFlags) { online(f); f.forceTokens = -2048 })
	bad("-force-tokens", func(f *simFlags) { f.forceTokens = -1 })
	ok(func(f *simFlags) { online(f); f.forceTokens = 2048 })

	// Elastic mode: online only, explicit schedules checked against the
	// cluster shape and the run horizon.
	elastic := func(f *simFlags) { online(f); f.elastic = true }
	ok(elastic)
	ok(func(f *simFlags) { elastic(f); f.faultSchedule = "2:fail:1,4:join:1" })
	ok(func(f *simFlags) { elastic(f); f.faultSchedule = "2.3:degrade:9:degraded" })
	bad("-elastic", func(f *simFlags) { f.elastic = true })
	bad("online mode", func(f *simFlags) { f.faultSchedule = "2:fail:1" })
	bad("-fault-schedule", func(f *simFlags) { online(f); f.faultSchedule = "2:fail:1" })
	bad("-fault-schedule", func(f *simFlags) { elastic(f); f.faultSchedule = "not-a-schedule" })
	bad("-fault-schedule", func(f *simFlags) { elastic(f); f.faultSchedule = "9:fail:1" })   // beyond -epochs
	bad("-fault-schedule", func(f *simFlags) { elastic(f); f.faultSchedule = "2.6:fail:1" }) // beyond -epoch-iters
	bad("-fault-schedule", func(f *simFlags) { elastic(f); f.faultSchedule = "2:fail:99" })  // no such node
	bad("-fault-schedule", func(f *simFlags) { elastic(f); f.faultSchedule = "2:join:1" })   // joining an alive node
}
