package main

import (
	"strings"
	"testing"
)

// Regression tests for the fail-fast flag validation: these combinations
// used to surface only deep inside RunOnline after setup work, or — for
// -warmup >= -iters — were silently absorbed by the metrics fallback,
// which folds warmup iterations back into the averages without warning.
func TestValidateFlags(t *testing.T) {
	ok := func(iters, warmup, epochs, epochIters, forceTokens int, policies, drift, predictor string) {
		t.Helper()
		if err := validateFlags(iters, warmup, epochs, epochIters, forceTokens, policies, drift, predictor); err != nil {
			t.Errorf("valid flags rejected: %v", err)
		}
	}
	bad := func(wantSub string, iters, warmup, epochs, epochIters, forceTokens int, policies, drift, predictor string) {
		t.Helper()
		err := validateFlags(iters, warmup, epochs, epochIters, forceTokens, policies, drift, predictor)
		if err == nil {
			t.Errorf("invalid flags accepted (want error containing %q)", wantSub)
			return
		}
		if !strings.Contains(err.Error(), wantSub) {
			t.Errorf("error %q does not mention %q", err, wantSub)
		}
	}

	// Classic mode defaults.
	ok(12, 3, 0, 6, 0, "whatever", "whatever", "whatever") // online-only names ignored
	// Warmup must leave a measured window.
	bad("-warmup", 12, 12, 0, 6, 0, "", "", "")
	bad("-warmup", 12, 20, 0, 6, 0, "", "", "")
	bad("-iters", 0, 0, 0, 6, 0, "", "", "")
	bad("-warmup", 12, -1, 0, 6, 0, "", "", "")
	ok(12, 11, 0, 6, 0, "", "", "")

	// Online mode.
	ok(12, 3, 5, 6, 0, "predictive,warm,scratch,static", "migration", "trend")
	ok(12, 3, 5, 2, 0, " warm , static ", "none", "last")
	bad("-epochs", 12, 3, -1, 6, 0, "warm", "stabilizing", "trend")
	bad("-epoch-iters", 12, 3, 5, 1, 0, "warm", "stabilizing", "trend")
	bad("drift model", 12, 3, 5, 6, 0, "warm", "sideways", "trend")
	bad("predictor", 12, 3, 5, 6, 0, "warm", "stabilizing", "oracle")
	bad("replan policy", 12, 3, 5, 6, 0, "warm,oracle", "stabilizing", "trend")
	bad("no policy", 12, 3, 5, 6, 0, " , ", "stabilizing", "trend")

	// -force-tokens must not silently read as unset.
	bad("-force-tokens", 12, 3, 5, 6, -2048, "warm", "stabilizing", "trend")
	bad("-force-tokens", 12, 3, 0, 6, -1, "", "", "")
	ok(12, 3, 5, 6, 2048, "warm", "stabilizing", "trend")
}
