// laer-sim simulates end-to-end MoE training of one or more systems on a
// configurable cluster and prints throughput, time breakdowns and balance
// metrics.
//
// Usage:
//
//	laer-sim -model mixtral-8x7b-e8k2 -systems laer,fsdp+ep,megatron \
//	         -nodes 4 -gpus 8 -iters 12 -aux 0
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"laermoe"
	"laermoe/internal/viz"
)

func main() {
	var (
		modelName = flag.String("model", "mixtral-8x7b-e8k2", "model configuration (see -list)")
		systems   = flag.String("systems", "laer,fsdp+ep,megatron,flexmoe", "comma-separated systems to simulate")
		nodes     = flag.Int("nodes", 4, "cluster nodes")
		gpus      = flag.Int("gpus", 8, "GPUs per node")
		iters     = flag.Int("iters", 12, "iterations to simulate")
		warmup    = flag.Int("warmup", 3, "warmup iterations excluded from averages")
		aux       = flag.Float64("aux", 0, "auxiliary loss weight")
		skew      = flag.Float64("skew", 0, "routing skew override (0 = default)")
		seed      = flag.Int64("seed", 1, "random seed")
		straggler = flag.Int("straggler", -1, "GPU index to slow down 2x (-1 = none)")
		list      = flag.Bool("list", false, "list models and systems, then exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("models: ", strings.Join(laermoe.Models(), ", "))
		fmt.Println("systems:", strings.Join(laermoe.Systems(), ", "))
		return
	}

	cluster, err := laermoe.NewCluster(laermoe.ClusterSpec{Nodes: *nodes, GPUsPerNode: *gpus})
	if err != nil {
		fatal(err)
	}
	if *straggler >= 0 {
		if err := cluster.SetStraggler(*straggler, 2.0); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("cluster: %s\nmodel:   %s, aux loss weight %g\n\n", cluster, *modelName, *aux)

	rows := [][]string{{"system", "iter (s)", "tokens/s", "a2a share", "imbalance", "TP", "mb tokens"}}
	var labels []string
	var tputs []float64
	for _, sys := range strings.Split(*systems, ",") {
		sys = strings.TrimSpace(sys)
		if sys == "" {
			continue
		}
		rep, err := laermoe.Simulate(laermoe.SimOptions{
			System: sys, Model: *modelName, Cluster: cluster,
			AuxLossWeight: *aux, DatasetSkew: *skew,
			Iterations: *iters, Warmup: *warmup, Seed: *seed,
		})
		if err != nil {
			fatal(fmt.Errorf("%s: %w", sys, err))
		}
		rows = append(rows, []string{
			sys,
			fmt.Sprintf("%.2f", rep.IterationTime),
			fmt.Sprintf("%.0f", rep.Throughput),
			fmt.Sprintf("%.1f%%", 100*rep.A2AShare),
			fmt.Sprintf("%.2f", rep.MeanImbalance),
			fmt.Sprintf("%d", rep.TPDegree),
			fmt.Sprintf("%d", rep.TokensPerDevice),
		})
		labels = append(labels, sys)
		tputs = append(tputs, rep.Throughput)
	}
	viz.Table(os.Stdout, rows)
	fmt.Println()
	viz.BarChart(os.Stdout, labels, tputs, 40, " tok/s")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "laer-sim:", err)
	os.Exit(1)
}
