// laer-sim simulates end-to-end MoE training of one or more systems on a
// configurable cluster and prints throughput, time breakdowns and balance
// metrics.
//
// Usage:
//
//	laer-sim -model mixtral-8x7b-e8k2 -systems laer,fsdp+ep,megatron \
//	         -nodes 4 -gpus 8 -iters 12 -aux 0
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"laermoe"
	"laermoe/internal/viz"
)

func main() {
	var (
		modelName = flag.String("model", "mixtral-8x7b-e8k2", "model configuration (see -list)")
		systems   = flag.String("systems", "laer,fsdp+ep,megatron,flexmoe", "comma-separated systems to simulate")
		nodes     = flag.Int("nodes", 4, "cluster nodes")
		gpus      = flag.Int("gpus", 8, "GPUs per node")
		iters     = flag.Int("iters", 12, "iterations to simulate")
		warmup    = flag.Int("warmup", 3, "warmup iterations excluded from averages")
		aux       = flag.Float64("aux", 0, "auxiliary loss weight")
		skew      = flag.Float64("skew", 0, "routing skew override (0 = default)")
		seed      = flag.Int64("seed", 1, "random seed")
		straggler = flag.Int("straggler", -1, "GPU index to slow down 2x (-1 = none)")
		list      = flag.Bool("list", false, "list models and systems, then exit")

		// Online (multi-epoch drifting-load) mode.
		epochs     = flag.Int("epochs", 0, "online mode: drift windows to simulate (0 = classic single-distribution mode)")
		epochIters = flag.Int("epoch-iters", 6, "online mode: iterations per epoch (first one is the replanner's observation)")
		drift      = flag.String("drift", "stabilizing", "online mode: drift model (none, stabilizing, bursty, migration)")
		driftRate  = flag.Float64("drift-rate", 0, "online mode: drift strength in (0,1] (0 = default 0.5)")
		policies   = flag.String("policies", "warm,scratch,static", "online mode: comma-separated replan policies to compare")
		threshold  = flag.Float64("threshold", 0, "online mode: warm-start per-expert load-change threshold (0 = default 0.2, negative = re-place on any change)")
		chargeMig  = flag.Bool("charge-relocation", false, "online mode: charge optimizer-state relocation per migrated replica (default: free FSEP re-layout)")
	)
	flag.Parse()

	if *list {
		fmt.Println("models:  ", strings.Join(laermoe.Models(), ", "))
		fmt.Println("systems: ", strings.Join(laermoe.Systems(), ", "))
		fmt.Println("policies:", strings.Join(laermoe.Policies(), ", "))
		fmt.Println("drifts:  ", strings.Join(laermoe.DriftModels(), ", "))
		return
	}

	cluster, err := laermoe.NewCluster(laermoe.ClusterSpec{Nodes: *nodes, GPUsPerNode: *gpus})
	if err != nil {
		fatal(err)
	}
	if *straggler >= 0 {
		if err := cluster.SetStraggler(*straggler, 2.0); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("cluster: %s\nmodel:   %s, aux loss weight %g\n\n", cluster, *modelName, *aux)

	if *epochs > 0 {
		runOnline(cluster, *modelName, *policies, *epochs, *epochIters,
			*drift, *driftRate, *threshold, *chargeMig, *aux, *skew, *seed)
		return
	}

	rows := [][]string{{"system", "iter (s)", "tokens/s", "a2a share", "imbalance", "TP", "mb tokens"}}
	var labels []string
	var tputs []float64
	for _, sys := range strings.Split(*systems, ",") {
		sys = strings.TrimSpace(sys)
		if sys == "" {
			continue
		}
		rep, err := laermoe.Simulate(laermoe.SimOptions{
			System: sys, Model: *modelName, Cluster: cluster,
			AuxLossWeight: *aux, DatasetSkew: *skew,
			Iterations: *iters, Warmup: *warmup, Seed: *seed,
		})
		if err != nil {
			fatal(fmt.Errorf("%s: %w", sys, err))
		}
		rows = append(rows, []string{
			sys,
			fmt.Sprintf("%.2f", rep.IterationTime),
			fmt.Sprintf("%.0f", rep.Throughput),
			fmt.Sprintf("%.1f%%", 100*rep.A2AShare),
			fmt.Sprintf("%.2f", rep.MeanImbalance),
			fmt.Sprintf("%d", rep.TPDegree),
			fmt.Sprintf("%d", rep.TokensPerDevice),
		})
		labels = append(labels, sys)
		tputs = append(tputs, rep.Throughput)
	}
	viz.Table(os.Stdout, rows)
	fmt.Println()
	viz.BarChart(os.Stdout, labels, tputs, 40, " tok/s")
}

// runOnline simulates every requested replanning policy over the same
// drifting multi-epoch trace and prints per-epoch detail plus a summary.
func runOnline(cluster *laermoe.Cluster, modelName, policies string, epochs, epochIters int,
	drift string, driftRate, threshold float64, chargeMig bool, aux, skew float64, seed int64) {
	migCost := 0.0
	if chargeMig {
		c, err := laermoe.RelocationCost(modelName, cluster)
		if err != nil {
			fatal(err)
		}
		migCost = c
		fmt.Printf("relocation charge: %.3f s per migrated replica\n", migCost)
	}
	fmt.Printf("online:  %d epochs x %d iterations, drift %s\n\n", epochs, epochIters, drift)

	summary := [][]string{{"policy", "total step (s)", "tokens/s", "migrations", "mig time (s)"}}
	var labels []string
	var tputs []float64
	for _, pol := range strings.Split(policies, ",") {
		pol = strings.TrimSpace(pol)
		if pol == "" {
			continue
		}
		rep, err := laermoe.SimulateOnline(laermoe.OnlineOptions{
			Policy: pol, Model: modelName, Cluster: cluster,
			Epochs: epochs, IterationsPerEpoch: epochIters,
			Drift: drift, DriftRate: driftRate,
			MigrationThreshold: threshold, MigrationCostPerReplica: migCost,
			AuxLossWeight: aux, DatasetSkew: skew, Seed: seed,
		})
		if err != nil {
			fatal(fmt.Errorf("%s: %w", pol, err))
		}
		rows := [][]string{{"epoch", "iter (s)", "tokens/s", "imbalance", "migrations", "mig time (s)"}}
		var migTime float64
		for _, e := range rep.Epochs {
			rows = append(rows, []string{
				fmt.Sprintf("%d", e.Epoch),
				fmt.Sprintf("%.2f", e.IterationTime),
				fmt.Sprintf("%.0f", e.Throughput),
				fmt.Sprintf("%.2f", e.Imbalance),
				fmt.Sprintf("%d", e.Migrations),
				fmt.Sprintf("%.1f", e.MigrationTime),
			})
			migTime += e.MigrationTime
		}
		fmt.Printf("policy %s:\n", pol)
		viz.Table(os.Stdout, rows)
		fmt.Println()
		summary = append(summary, []string{
			pol,
			fmt.Sprintf("%.1f", rep.TotalStepTime),
			fmt.Sprintf("%.0f", rep.MeanThroughput),
			fmt.Sprintf("%d", rep.TotalMigrations),
			fmt.Sprintf("%.1f", migTime),
		})
		labels = append(labels, pol)
		tputs = append(tputs, rep.MeanThroughput)
	}
	viz.Table(os.Stdout, summary)
	fmt.Println()
	viz.BarChart(os.Stdout, labels, tputs, 40, " tok/s")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "laer-sim:", err)
	os.Exit(1)
}
