// laer-sim simulates end-to-end MoE training of one or more systems on a
// configurable cluster and prints throughput, time breakdowns and balance
// metrics.
//
// Usage:
//
//	laer-sim -model mixtral-8x7b-e8k2 -systems laer,fsdp+ep,megatron \
//	         -nodes 4 -gpus 8 -iters 12 -aux 0
//
// Online (multi-epoch drifting-load) mode compares replanning policies:
//
//	laer-sim -epochs 5 -drift migration -policies predictive,warm,static \
//	         -predictor trend -charge-relocation
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"laermoe"
	"laermoe/internal/prof"
	"laermoe/internal/viz"
)

func main() {
	var (
		modelName = flag.String("model", "mixtral-8x7b-e8k2", "model configuration (see -list)")
		systems   = flag.String("systems", "laer,fsdp+ep,megatron,flexmoe", "comma-separated systems to simulate")
		nodes     = flag.Int("nodes", 4, "cluster nodes")
		gpus      = flag.Int("gpus", 8, "GPUs per node")
		iters     = flag.Int("iters", 12, "iterations to simulate")
		warmup    = flag.Int("warmup", 3, "warmup iterations excluded from averages")
		aux       = flag.Float64("aux", 0, "auxiliary loss weight")
		skew      = flag.Float64("skew", 0, "routing skew override (0 = default)")
		seed      = flag.Int64("seed", 1, "random seed")
		straggler = flag.Int("straggler", -1, "GPU index to slow down 2x (-1 = none)")
		list      = flag.Bool("list", false, "list models, systems, policies, drifts and predictors, then exit")

		// The synthetic large-E scale models (synthetic-e2048 on 64x8,
		// synthetic-e4096 on 128x8) study routing and re-layout at fixed
		// per-device load; -force-tokens bypasses the memory fitter for
		// them, as the scale experiment does.
		forceTokens = flag.Int("force-tokens", 0, "fix tokens per device, bypassing the memory fitter (0 = fit)")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")

		// Online (multi-epoch drifting-load) mode.
		epochs     = flag.Int("epochs", 0, "online mode: drift windows to simulate (0 = classic single-distribution mode)")
		epochIters = flag.Int("epoch-iters", 6, "online mode: iterations per epoch (the first one is the reactive policies' observation)")
		drift      = flag.String("drift", "stabilizing", "online mode: drift model (none, stabilizing, bursty, migration)")
		driftRate  = flag.Float64("drift-rate", 0, "online mode: drift strength in (0,1] (0 = default 0.5)")
		policies   = flag.String("policies", "predictive,warm,scratch,static", "online mode: comma-separated replan policies to compare")
		predictor  = flag.String("predictor", "trend", "online mode: load predictor for the predictive policy (last, ema, trend)")
		confidence = flag.Float64("confidence", 0, "online mode: forecast-error confidence threshold (0 = default 0.25, negative = trust unconditionally)")
		threshold  = flag.Float64("threshold", 0, "online mode: warm-start per-expert load-change threshold (0 = default 0.2, negative = re-place on any change)")
		chargeMig  = flag.Bool("charge-relocation", false, "online mode: charge optimizer-state relocation per migrated replica (default: free FSEP re-layout)")

		// Elastic (fault-injected) online mode.
		elastic       = flag.Bool("elastic", false, "online mode: inject node loss/join faults and report recovery (see -fault-schedule)")
		faultSchedule = flag.String("fault-schedule", "", "elastic mode: fault events epoch[.iter]:kind:arg,... e.g. '2:fail:1,4:join:1' (empty = synthesize from -seed)")

		// Inference-serving online mode.
		workload = flag.String("workload", "training", "online mode: workload to plan for (training, inference)")
		arrival  = flag.String("arrival", "diurnal", "inference workload: request arrival shape (diurnal, bursty)")
	)
	flag.Parse()

	if *list {
		fmt.Println("models:    ", strings.Join(laermoe.Models(), ", "))
		fmt.Println("systems:   ", strings.Join(laermoe.Systems(), ", "))
		fmt.Println("policies:  ", strings.Join(laermoe.Policies(), ", "))
		fmt.Println("drifts:    ", strings.Join(laermoe.DriftModels(), ", "))
		fmt.Println("predictors:", strings.Join(laermoe.Predictors(), ", "))
		fmt.Println("workloads: ", strings.Join(laermoe.Workloads(), ", "))
		fmt.Println("arrivals:  ", strings.Join(laermoe.Arrivals(), ", "))
		return
	}

	// Every flag combination is rejected here, before any cluster setup or
	// simulation work: a typo'd policy must not surface as an error three
	// epochs into a run, and a warmup that swallows every iteration must
	// not silently fold warmup iterations back into the averages. Usage
	// errors exit 2, runtime failures exit 1 — consistently across the
	// laer-* tools.
	if err := validateFlags(simFlags{
		model: *modelName, systems: *systems,
		nodes: *nodes, gpus: *gpus, straggler: *straggler,
		iters: *iters, warmup: *warmup,
		epochs: *epochs, epochIters: *epochIters,
		forceTokens: *forceTokens,
		policies:    *policies, drift: *drift, predictor: *predictor,
		driftRate: *driftRate,
		elastic:   *elastic, faultSchedule: *faultSchedule,
		workload: *workload, arrival: *arrival,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "laer-sim:", err)
		fmt.Fprintln(os.Stderr, "run 'laer-sim -list' for the accepted names, or -h for usage")
		os.Exit(2)
	}

	cluster, err := laermoe.NewCluster(laermoe.ClusterSpec{Nodes: *nodes, GPUsPerNode: *gpus})
	if err != nil {
		fatal(err)
	}
	if *straggler >= 0 {
		if err := cluster.SetStraggler(*straggler, 2.0); err != nil {
			fatal(err)
		}
	}
	stopCPU, err := prof.Start(*cpuprofile)
	if err != nil {
		fatal(err)
	}
	defer stopCPU()
	// fatal exits without unwinding defers; flush the profile there too so
	// the one run the user most wants to inspect is not truncated.
	stopProfile = stopCPU
	fmt.Printf("cluster: %s\nmodel:   %s, aux loss weight %g\n\n", cluster, *modelName, *aux)

	if *epochs > 0 {
		schedule := ""
		if *elastic {
			schedule = *faultSchedule
			if schedule == "" {
				s, err := laermoe.SynthesizeFaultSchedule(cluster, *epochs, *seed)
				if err != nil {
					fatal(err)
				}
				schedule = s
			}
			if schedule == "" {
				fmt.Println("elastic: the synthesized schedule drew no fault; running a fixed cluster")
			} else {
				fmt.Printf("elastic: fault schedule %s\n", schedule)
			}
		}
		runOnline(cluster, *modelName, *policies, *workload, *arrival, *epochs, *epochIters,
			*drift, *driftRate, *predictor, *confidence, *threshold, *chargeMig, *aux, *skew, *forceTokens, schedule, *seed)
		stopCPU()
		if err := prof.WriteHeap(*memprofile); err != nil {
			fatal(err)
		}
		return
	}

	rows := [][]string{{"system", "iter (s)", "tokens/s", "a2a share", "imbalance", "TP", "mb tokens"}}
	var labels []string
	var tputs []float64
	for _, sys := range strings.Split(*systems, ",") {
		sys = strings.TrimSpace(sys)
		if sys == "" {
			continue
		}
		rep, err := laermoe.Simulate(laermoe.SimOptions{
			System: sys, Model: *modelName, Cluster: cluster,
			AuxLossWeight: *aux, DatasetSkew: *skew,
			Iterations: *iters, Warmup: *warmup, Seed: *seed,
			ForceTokensPerDevice: *forceTokens,
		})
		if err != nil {
			fatal(fmt.Errorf("%s: %w", sys, err))
		}
		rows = append(rows, []string{
			sys,
			fmt.Sprintf("%.2f", rep.IterationTime),
			fmt.Sprintf("%.0f", rep.Throughput),
			fmt.Sprintf("%.1f%%", 100*rep.A2AShare),
			fmt.Sprintf("%.2f", rep.MeanImbalance),
			fmt.Sprintf("%d", rep.TPDegree),
			fmt.Sprintf("%d", rep.TokensPerDevice),
		})
		labels = append(labels, sys)
		tputs = append(tputs, rep.Throughput)
	}
	viz.Table(os.Stdout, rows)
	fmt.Println()
	viz.BarChart(os.Stdout, labels, tputs, 40, " tok/s")
	stopCPU()
	if err := prof.WriteHeap(*memprofile); err != nil {
		fatal(err)
	}
}

// simFlags is the flag set validateFlags audits.
type simFlags struct {
	model, systems             string
	nodes, gpus, straggler     int
	iters, warmup              int
	epochs, epochIters         int
	forceTokens                int
	policies, drift, predictor string
	driftRate                  float64
	elastic                    bool
	faultSchedule              string
	workload, arrival          string
}

// validateFlags fails fast on flag combinations that the cluster setup,
// RunOnline or the metrics layer would otherwise only reject (or, worse,
// silently absorb) after setup work has already run.
func validateFlags(f simFlags) error {
	if f.nodes < 1 || f.gpus < 1 {
		return fmt.Errorf("-nodes %d and -gpus %d must both be at least 1", f.nodes, f.gpus)
	}
	if !names(laermoe.Models()).has(f.model) {
		return fmt.Errorf("unknown model %q (have %s)", f.model, names(laermoe.Models()))
	}
	if f.straggler >= f.nodes*f.gpus {
		return fmt.Errorf("-straggler %d out of range for %d GPUs", f.straggler, f.nodes*f.gpus)
	}
	if f.straggler < -1 {
		return fmt.Errorf("-straggler %d must be a GPU index or -1", f.straggler)
	}
	if f.epochs < 0 {
		return fmt.Errorf("-epochs %d must not be negative", f.epochs)
	}
	if f.forceTokens < 0 {
		// A negative value would silently read as "unset" downstream and
		// hand the choice back to the memory fitter.
		return fmt.Errorf("-force-tokens %d must not be negative", f.forceTokens)
	}
	if f.epochs == 0 {
		if f.elastic || f.faultSchedule != "" {
			return fmt.Errorf("-elastic and -fault-schedule need online mode (-epochs > 0)")
		}
		if f.workload != "" && f.workload != laermoe.WorkloadTraining {
			return fmt.Errorf("-workload %q needs online mode (-epochs > 0)", f.workload)
		}
		// Classic mode: the measured window must be non-empty, or the
		// metrics fallback silently averages over warmup iterations.
		if f.iters < 1 {
			return fmt.Errorf("-iters %d must be at least 1", f.iters)
		}
		if f.warmup < 0 {
			return fmt.Errorf("-warmup %d must not be negative", f.warmup)
		}
		if f.warmup >= f.iters {
			return fmt.Errorf("-warmup %d leaves no measured iterations out of -iters %d", f.warmup, f.iters)
		}
		any := false
		for _, sys := range strings.Split(f.systems, ",") {
			sys = strings.TrimSpace(sys)
			if sys == "" {
				continue
			}
			if !names(laermoe.Systems()).has(sys) {
				return fmt.Errorf("unknown system %q (have %s)", sys, names(laermoe.Systems()))
			}
			any = true
		}
		if !any {
			return fmt.Errorf("-systems %q selects no system", f.systems)
		}
		return nil
	}
	if f.epochIters < 2 {
		return fmt.Errorf("-epoch-iters %d must be at least 2 (the first iteration is the observation)", f.epochIters)
	}
	if f.driftRate < 0 || f.driftRate > 1 {
		return fmt.Errorf("-drift-rate %g out of [0,1] (0 selects the default)", f.driftRate)
	}
	// Name flags resolve through the one policy/workload/predictor/drift
	// registry, so a policy registered there is accepted here with no
	// hand-kept list to update (and the registry's error carries the
	// accepted names).
	if _, err := laermoe.LookupDrift(f.drift); err != nil {
		return fmt.Errorf("-drift: %v", err)
	}
	if _, err := laermoe.LookupPredictor(f.predictor); err != nil {
		return fmt.Errorf("-predictor: %v", err)
	}
	if _, err := laermoe.LookupWorkload(f.workload); err != nil {
		return fmt.Errorf("-workload: %v", err)
	}
	if !names(laermoe.Arrivals()).has(f.arrival) {
		return fmt.Errorf("-arrival: unknown arrival shape %q (have %s)", f.arrival, names(laermoe.Arrivals()))
	}
	any := false
	for _, pol := range strings.Split(f.policies, ",") {
		pol = strings.TrimSpace(pol)
		if pol == "" {
			continue
		}
		if _, err := laermoe.LookupPolicy(pol); err != nil {
			return fmt.Errorf("-policies: %v", err)
		}
		any = true
	}
	if !any {
		return fmt.Errorf("-policies %q selects no policy", f.policies)
	}
	if f.workload == laermoe.WorkloadInference && (f.elastic || f.faultSchedule != "") {
		return fmt.Errorf("-workload=inference does not support fault injection (drop -elastic/-fault-schedule)")
	}
	if f.faultSchedule != "" && !f.elastic {
		return fmt.Errorf("-fault-schedule needs -elastic")
	}
	if f.elastic && f.faultSchedule != "" {
		// An explicit schedule is checked against the cluster shape and the
		// run horizon here; a synthesized one is valid by construction.
		cluster, err := laermoe.NewCluster(laermoe.ClusterSpec{Nodes: f.nodes, GPUsPerNode: f.gpus})
		if err != nil {
			return err
		}
		if err := laermoe.ValidateFaultSchedule(f.faultSchedule, cluster, f.epochs, f.epochIters); err != nil {
			return fmt.Errorf("-fault-schedule: %v", err)
		}
	}
	return nil
}

type names []string

func (n names) has(s string) bool {
	for _, v := range n {
		if v == s {
			return true
		}
	}
	return false
}

func (n names) String() string { return strings.Join(n, ", ") }

// runOnline simulates every requested replanning policy over the same
// drifting multi-epoch trace (and, in elastic mode, the same fault
// schedule) and prints per-epoch detail, recovery records and a summary.
// The inference workload swaps the throughput columns for request counts
// and p50/p99 decode latency.
func runOnline(cluster *laermoe.Cluster, modelName, policies, workload, arrival string, epochs, epochIters int,
	drift string, driftRate float64, predictor string, confidence, threshold float64,
	chargeMig bool, aux, skew float64, forceTokens int, faultSchedule string, seed int64) {
	migCost := 0.0
	if chargeMig {
		c, err := laermoe.RelocationCost(modelName, cluster)
		if err != nil {
			fatal(err)
		}
		migCost = c
		fmt.Printf("relocation charge: %.3f s per migrated replica\n", migCost)
	}
	if faultSchedule != "" {
		c, err := laermoe.CheckpointRestoreCost(modelName, cluster)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("checkpoint restore charge: %.3f s per re-read replica\n", c)
	}
	inference := workload == laermoe.WorkloadInference
	if inference {
		fmt.Printf("online:  %d epochs x %d iterations, inference workload, arrival %s, predictor %s\n\n", epochs, epochIters, arrival, predictor)
	} else {
		fmt.Printf("online:  %d epochs x %d iterations, drift %s, predictor %s\n\n", epochs, epochIters, drift, predictor)
	}

	summary := [][]string{{"policy", "total step (s)", "tokens/s", "migrations", "mig time (s)", "forecast err"}}
	if inference {
		summary = [][]string{{"policy", "total step (s)", "p50 (s)", "p99 (s)", "migrations", "mig time (s)", "forecast err"}}
	}
	var labels []string
	var tputs []float64
	for _, pol := range strings.Split(policies, ",") {
		pol = strings.TrimSpace(pol)
		if pol == "" {
			continue
		}
		rep, err := laermoe.SimulateOnline(laermoe.OnlineOptions{
			Spec: laermoe.OnlineSessionSpec{
				Policy: pol, Model: modelName,
				Workload: workload, Arrival: arrival,
				IterationsPerEpoch: epochIters,
				Predictor:          predictor, ConfidenceThreshold: confidence,
				MigrationThreshold: threshold, MigrationCostPerReplica: migCost,
				FaultSchedule: faultSchedule,
				AuxLossWeight: aux, DatasetSkew: skew,
				ForceTokensPerDevice: forceTokens, Seed: seed,
			},
			Cluster: cluster,
			Epochs:  epochs,
			Drift:   drift, DriftRate: driftRate,
		})
		if err != nil {
			fatal(fmt.Errorf("%s: %w", pol, err))
		}
		rows := [][]string{{"epoch", "iter (s)", "first iter (s)", "tokens/s", "imbalance", "migrations", "mig time (s)", "predicted", "fc err"}}
		if inference {
			rows = [][]string{{"epoch", "iter (s)", "requests", "p50 (s)", "p99 (s)", "imbalance", "migrations", "mig time (s)", "fc err"}}
		}
		var migTime float64
		for _, e := range rep.Epochs {
			if inference {
				rows = append(rows, []string{
					fmt.Sprintf("%d", e.Epoch),
					fmt.Sprintf("%.2f", e.IterationTime),
					fmt.Sprintf("%d", e.Requests),
					fmt.Sprintf("%.3f", e.DecodeP50),
					fmt.Sprintf("%.3f", e.DecodeP99),
					fmt.Sprintf("%.2f", e.Imbalance),
					fmt.Sprintf("%d", e.Migrations),
					fmt.Sprintf("%.1f", e.MigrationTime),
					fmt.Sprintf("%.3f", e.ForecastError),
				})
			} else {
				rows = append(rows, []string{
					fmt.Sprintf("%d", e.Epoch),
					fmt.Sprintf("%.2f", e.IterationTime),
					fmt.Sprintf("%.2f", e.IterationTimes[0]),
					fmt.Sprintf("%.0f", e.Throughput),
					fmt.Sprintf("%.2f", e.Imbalance),
					fmt.Sprintf("%d", e.Migrations),
					fmt.Sprintf("%.1f", e.MigrationTime),
					fmt.Sprintf("%d", e.PredictedLayers),
					fmt.Sprintf("%.3f", e.ForecastError),
				})
			}
			migTime += e.MigrationTime
		}
		label := pol
		if pol == laermoe.PolicyPredictive {
			label = pol + "/" + rep.Predictor
		}
		fmt.Printf("policy %s:\n", label)
		viz.Table(os.Stdout, rows)
		fmt.Println()
		if len(rep.Recoveries) > 0 {
			rec := [][]string{{"fault epoch", "events", "restored", "restore (s)", "added step (s)", "epochs to recover"}}
			for _, r := range rep.Recoveries {
				toRecover := fmt.Sprintf("%d", r.EpochsToRecover)
				if r.EpochsToRecover < 0 {
					toRecover = "never"
				}
				rec = append(rec, []string{
					fmt.Sprintf("%d", r.Epoch),
					strings.Join(r.Events, " "),
					fmt.Sprintf("%d", r.Restored),
					fmt.Sprintf("%.2f", r.RestoreTime),
					fmt.Sprintf("%.2f", r.AddedStepTime),
					toRecover,
				})
			}
			fmt.Printf("recovery (%s):\n", label)
			viz.Table(os.Stdout, rec)
			fmt.Println()
		}
		if inference {
			summary = append(summary, []string{
				label,
				fmt.Sprintf("%.1f", rep.TotalStepTime),
				fmt.Sprintf("%.3f", rep.DecodeP50),
				fmt.Sprintf("%.3f", rep.DecodeP99),
				fmt.Sprintf("%d", rep.TotalMigrations),
				fmt.Sprintf("%.1f", migTime),
				fmt.Sprintf("%.3f", rep.MeanForecastError),
			})
			labels = append(labels, label)
			tputs = append(tputs, rep.DecodeP99)
		} else {
			summary = append(summary, []string{
				label,
				fmt.Sprintf("%.1f", rep.TotalStepTime),
				fmt.Sprintf("%.0f", rep.MeanThroughput),
				fmt.Sprintf("%d", rep.TotalMigrations),
				fmt.Sprintf("%.1f", migTime),
				fmt.Sprintf("%.3f", rep.MeanForecastError),
			})
			labels = append(labels, label)
			tputs = append(tputs, rep.MeanThroughput)
		}
	}
	viz.Table(os.Stdout, summary)
	fmt.Println()
	if inference {
		viz.BarChart(os.Stdout, labels, tputs, 40, " s p99")
	} else {
		viz.BarChart(os.Stdout, labels, tputs, 40, " tok/s")
	}
}

// stopProfile flushes an in-flight CPU profile before a fatal exit; a
// no-op until profiling starts.
var stopProfile = func() {}

func fatal(err error) {
	stopProfile()
	fmt.Fprintln(os.Stderr, "laer-sim:", err)
	os.Exit(1)
}
